(* Experiments E5-E7: Algorithm 3 and the churn-resistant network
   (Section 4).  E5 regenerates the congestion / empty-segment / round
   bounds of Lemmas 11-13; E6 the cycle-uniformity claim of Lemma 10 /
   Theorem 4; E7 the connectivity-under-churn claim of Theorem 5, with the
   static no-reconfiguration network as baseline (ablation A2). *)

open Exp_util

(* ---------- E5: congestion, segments, rounds vs n (Lemmas 11-13) ------- *)

let e5 () =
  let table =
    Stats.Table.create
      ~title:
        "E5 (Lemmas 11-13 + ablation A1) - reconfiguration internals vs \
         network size"
      ~columns:
        [
          "n"; "log2 n"; "epoch rounds"; "A1: plain-walk rounds";
          "max congestion"; "max empty segment"; "sampling work (bits/rd)";
          "Alg3 traffic (bits)"; "underflows";
        ]
  in
  let rounds_series = ref [] and plain_series = ref [] in
  let note, bench_total = tally () in
  List.iter
    (fun n ->
      let trials = 3 in
      let rounds = ref [] and congestion = ref [] and segments = ref [] in
      let work = ref [] and underflows = ref [] and plain_rounds = ref [] in
      let reconfig_bits = ref [] in
      for trial = 1 to trials do
        let s = rng_for "e5" (n + trial) in
        let net = Core.Churn_network.create ~trace:(trace ()) ~rng:s ~n () in
        let r = Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||] in
        note (Bench.rounds r.Core.Churn_network.rounds);
        note (Bench.bits r.Core.Churn_network.reconfig_bits);
        note (Bench.node_bits r.Core.Churn_network.max_node_round_bits);
        rounds := r.Core.Churn_network.rounds :: !rounds;
        congestion := r.Core.Churn_network.max_chosen :: !congestion;
        segments := r.Core.Churn_network.max_empty_segment :: !segments;
        work := r.Core.Churn_network.max_node_round_bits :: !work;
        reconfig_bits := r.Core.Churn_network.reconfig_bits :: !reconfig_bits;
        underflows := r.Core.Churn_network.sampling_underflows :: !underflows;
        (* ablation A1: same epoch driven by plain-walk sampling *)
        let s' = rng_for "e5a" (n + trial) in
        let net' =
          Core.Churn_network.create ~sampler:Core.Churn_network.Plain_walks
            ~rng:s' ~n ()
        in
        let r' =
          Core.Churn_network.epoch net' ~leaves:[||] ~join_introducers:[||]
        in
        plain_rounds := r'.Core.Churn_network.rounds :: !plain_rounds
      done;
      rounds_series :=
        (float_of_int n, mean_of_int_list !rounds) :: !rounds_series;
      plain_series :=
        (float_of_int n, mean_of_int_list !plain_rounds) :: !plain_series;
      Stats.Table.add_row table
        [
          int_c n;
          int_c (Core.Params.log2i_ceil n);
          flt ~decimals:1 (mean_of_int_list !rounds);
          flt ~decimals:1 (mean_of_int_list !plain_rounds);
          int_c (max_of_int_list !congestion);
          int_c (max_of_int_list !segments);
          int_c (max_of_int_list !work);
          int_c (max_of_int_list !reconfig_bits);
          int_c (max_of_int_list !underflows);
        ])
    (ns_pow2 8 13);
  Stats.Table.note table
    (Printf.sprintf
       "epoch rounds grow like %s with rapid sampling, %s with plain walks \
        (ablation A1)"
       (growth_of_series (List.rev !rounds_series))
       (growth_of_series (List.rev !plain_series)));
  Stats.Table.note table
    "paper: congestion and empty segments stay polylogarithmic (Lemmas \
     11/12); the whole reconfiguration takes O(log log n) rounds (Lemma 13) \
     - only because the sampling primitive does";
  Stats.Table.print table;
  bench_total ()

(* ---------- E6: uniformity over cycles (Lemma 10 / Theorem 4) ---------- *)

let count_cycles ~note n trials =
  let s = rng_for "e6" n in
  let succ = Array.init n (fun i -> (i + 1) mod n) in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  let counts = Hashtbl.create 256 in
  for _ = 1 to trials do
    match
      Core.Reconfig.reconfigure_cycle ~rng:s ~succ ~out_label ~joiner_labels
        ~take_sample:(fun _ -> Prng.Stream.int s n)
        ~m:n ()
    with
    | None -> ()
    | Some (new_succ, stats) ->
        note (Bench.rounds stats.Core.Reconfig.rounds);
        note (Bench.bits stats.Core.Reconfig.work_bits);
        let buf = Buffer.create 16 in
        let v = ref new_succ.(0) in
        while !v <> 0 do
          Buffer.add_string buf (string_of_int !v);
          Buffer.add_char buf '.';
          v := new_succ.(!v)
        done;
        let key = Buffer.contents buf in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  counts

let e6 () =
  let table =
    Stats.Table.create
      ~title:
        "E6 (Lemma 10 / Theorem 4) - new cycle uniform over all Hamilton cycles"
      ~columns:
        [
          "n"; "possible cycles"; "trials"; "cycles reached"; "chi2 p";
          "verdict";
        ]
  in
  let note, bench_total = tally () in
  List.iter
    (fun (n, expect, trials) ->
      let counts = count_cycles ~note n trials in
      let observed = Array.of_seq (Seq.map snd (Hashtbl.to_seq counts)) in
      (* include unreached cycles as zero cells *)
      let cells =
        Array.append observed (Array.make (expect - Array.length observed) 0)
      in
      let p = Stats.Chi_square.test_uniform cells in
      Stats.Table.add_row table
        [
          int_c n; int_c expect; int_c trials; int_c (Hashtbl.length counts);
          flt ~decimals:3 p;
          (if p > 0.01 then "uniform" else "BIASED");
        ])
    [ (5, 24, 24_000); (6, 120, 60_000); (7, 720, 144_000) ];
  Stats.Table.note table
    "paper: Algorithm 3 produces each cycle on the new node set with equal \
     probability (Lemma 10); a chi-square test over all (n-1)! directed \
     cycles cannot reject uniformity";
  Stats.Table.print table;
  bench_total ()

(* ---------- E7: connectivity under churn (Theorem 5 + ablation A2) ----- *)

type churn_outcome = {
  epochs_ok : int;
  epochs_total : int;
  max_rounds : int;
  max_congestion : int;
  max_segment : int;
  shortfalls : int;
}

let run_reconfigured strategy ~leave_frac ~join_frac ~epochs ~n =
  let s = rng_for ("e7" ^ Core.Churn_adversary.to_string strategy) n in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n () in
  let ok = ref 0 and max_rounds = ref 0 and max_cong = ref 0 in
  let max_seg = ref 0 and shortfalls = ref 0 in
  let bench = ref Bench.zero in
  for _ = 1 to epochs do
    let plan =
      Core.Churn_adversary.plan strategy ~rng:(Prng.Stream.split s)
        ~graph:(Core.Churn_network.graph net) ~leave_frac ~join_frac
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    if r.Core.Churn_network.valid && r.Core.Churn_network.connected then incr ok;
    bench :=
      Bench.add !bench
        {
          Sweep.Agg.rounds = r.Core.Churn_network.rounds;
          total_bits = r.Core.Churn_network.reconfig_bits;
          max_node_bits = r.Core.Churn_network.max_node_round_bits;
        };
    max_rounds := max !max_rounds r.Core.Churn_network.rounds;
    max_cong := max !max_cong r.Core.Churn_network.max_chosen;
    max_seg := max !max_seg r.Core.Churn_network.max_empty_segment;
    shortfalls := !shortfalls + r.Core.Churn_network.sample_shortfall
  done;
  ( {
      epochs_ok = !ok;
      epochs_total = epochs;
      max_rounds = !max_rounds;
      max_congestion = !max_cong;
      max_segment = !max_seg;
      shortfalls = !shortfalls;
    },
    !bench )

let run_static strategy ~leave_frac ~join_frac ~epochs ~n =
  (* Feed the same kind of churn stream to a never-reconfiguring H-graph. *)
  let s = rng_for ("e7s" ^ Core.Churn_adversary.to_string strategy) n in
  let b = Core.Static_baseline.create ~rng:(Prng.Stream.split s) ~n () in
  let first_disconnect = ref (-1) in
  (try
     for e = 1 to epochs do
       let alive = Core.Static_baseline.alive_positions b in
       let n_alive = Array.length alive in
       let leave_count = min (n_alive - 4) (int_of_float (leave_frac *. float_of_int n_alive)) in
       let kill_idx = Prng.Stream.sample_distinct s n_alive ~k:(max 0 leave_count) in
       let kill = Array.map (fun i -> alive.(i)) kill_idx in
       let dead = Array.make (Core.Static_baseline.node_count b) false in
       Array.iter (fun v -> dead.(v) <- true) kill;
       let survivors =
         Array.of_list
           (List.filter (fun v -> not dead.(v)) (Array.to_list alive))
       in
       let joins =
         Array.init
           (int_of_float (join_frac *. float_of_int n_alive))
           (fun _ -> survivors.(Prng.Stream.int s (Array.length survivors)))
       in
       Core.Static_baseline.apply b ~leaves:kill ~join_introducers:joins;
       if not (Core.Static_baseline.is_connected b) then begin
         first_disconnect := e;
         raise Exit
       end
     done
   with Exit -> ());
  (!first_disconnect, Core.Static_baseline.largest_component_fraction b)

let e7 () =
  let table =
    Stats.Table.create
      ~title:
        "E7 (Theorem 5 + ablation A2) - connectivity under adversarial churn, \
         n=1024, 15 epochs"
      ~columns:
        [
          "adversary"; "leave/join per epoch"; "reconfigured: connected";
          "max rounds"; "max congestion"; "static: 1st disconnect";
          "static: final giant comp";
        ]
  in
  let epochs = 15 and n = 1024 in
  (* (leave/join pair) x adversary grid through the sweep engine; each
     cell is seeded by its own identity, so it is safe and deterministic
     to compute on separate domains *)
  let cells =
    grid ~sweep:"e7"
      [
        Sweep.Grid.strings "churn" [ "0.25/0.25"; "0.5/0.55" ];
        Sweep.Grid.strings "adversary"
          (List.map Core.Churn_adversary.to_string Core.Churn_adversary.all);
      ]
  in
  let rows, bench =
    sweep_rows ~sweep:"e7" cells (fun cell ->
        let leave_frac, join_frac =
          match
            String.split_on_char '/' (Sweep.Grid.binding cell "churn")
          with
          | [ l; j ] -> (float_of_string l, float_of_string j)
          | _ -> assert false
        in
        let strategy =
          let name = Sweep.Grid.binding cell "adversary" in
          List.find
            (fun st -> Core.Churn_adversary.to_string st = name)
            Core.Churn_adversary.all
        in
        let r, b = run_reconfigured strategy ~leave_frac ~join_frac ~epochs ~n in
        let first_disc, giant =
          run_static strategy ~leave_frac ~join_frac ~epochs ~n
        in
        ( [
            Core.Churn_adversary.to_string strategy;
            Printf.sprintf "%.0f%%/%.0f%%" (100. *. leave_frac)
              (100. *. join_frac);
            Printf.sprintf "%d/%d" r.epochs_ok r.epochs_total;
            int_c r.max_rounds;
            int_c r.max_congestion;
            (if first_disc < 0 then "never"
             else Printf.sprintf "epoch %d" first_disc);
            pct giant;
          ],
          b ))
  in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "paper: the reconfigured network stays connected under any constant \
     churn rate (Theorem 5); a static overlay subjected to the same stream \
     fragments";
  Stats.Table.print table;
  bench
