(* Experiment E14: expansion is preserved across reconfigurations.

   Theorem 5's usefulness rests on the new topology being a *fresh uniform*
   H-graph every epoch: by Corollary 1 such graphs are expanders
   (|lambda_2| <= 2 sqrt(d)) w.h.p., which is what keeps the diameter
   logarithmic and the next round of random walks rapidly mixing.  This
   experiment tracks the spectral expansion and diameter of the live
   network across churn epochs — if reconfiguration introduced any bias,
   it would show up here as spectral decay. *)

open Exp_util

let e14 () =
  let n = 1024 and d = 8 in
  let epochs = 12 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E14 (Corollary 1 across epochs) - spectral expansion of the \
            live network, n=%d, d=%d, 30%%/30%% churn per epoch" n d)
      ~columns:
        [
          "epoch"; "n"; "|lambda2|"; "2 sqrt(d) bound"; "expander";
          "diameter (>=)";
        ]
  in
  let s = rng_for "e14" 0 in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n () in
  let bound = 2.0 *. sqrt (float_of_int d) in
  let measure epoch =
    let g = Topology.Hgraph.to_graph (Core.Churn_network.graph net) in
    let l2 =
      Topology.Spectral.second_eigenvalue ~iterations:150 g (Prng.Stream.split s)
    in
    let diam = Topology.Bfs.diameter_double_sweep g (Prng.Stream.split s) in
    Stats.Table.add_row table
      [
        int_c epoch;
        int_c (Core.Churn_network.size net);
        flt ~decimals:3 l2;
        flt ~decimals:3 bound;
        bool_c (l2 <= bound *. 1.05);
        int_c diam;
      ]
  in
  measure 0;
  let note, bench_total = tally () in
  for e = 1 to epochs do
    let plan =
      Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
        ~rng:(Prng.Stream.split s)
        ~graph:(Core.Churn_network.graph net) ~leave_frac:0.3 ~join_frac:0.3
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    note (Bench.rounds r.Core.Churn_network.rounds);
    note (Bench.bits r.Core.Churn_network.reconfig_bits);
    note (Bench.node_bits r.Core.Churn_network.max_node_round_bits);
    if e mod 3 = 0 || e = epochs then measure e
  done;
  Stats.Table.note table
    "paper: every reconfiguration draws a fresh uniform H-graph (Theorem \
     4), which is an expander with |lambda_2| <= 2 sqrt(d) w.h.p. \
     (Corollary 1) and has O(log n) diameter - the properties the next \
     epoch's rapid sampling depends on";
  Stats.Table.print table;
  bench_total ()
