(* Trace sink micro-benchmark: binary records vs JSONL text.

   Generates one deterministic, request-dominated synthetic event stream
   (the mix a million-node workload run produces: mostly Request events,
   one Round summary per round, the odd Fault), emits it through both the
   JSONL and the binary sink, and writes BENCH_trace.json with bytes per
   event and events per second for each plus the compression ratio.

   Two correctness gates ride along, so the bench doubles as an
   end-to-end check of the pipeline it measures:

   - export equivalence: decoding the binary file and rendering each
     event with [Trace.jsonl_of_event] must reproduce the JSONL file
     byte for byte (the property test/cram/trace_bin.t pins by md5);
   - windowed-stats equivalence: request latencies accumulated through
     [Stats.Windowed.Make (Stats.Log_histogram)] (both retain modes)
     must equal a single unwindowed histogram cell for cell.

   The bench fails hard if either gate breaks or the binary sink falls
   under 5x fewer bytes per event than JSONL on this mix. *)

let rounds = 2000
let requests_per_round = 48
let seed = 0x7ACEL

(* The synthetic stream, generated once so both sinks see identical
   events.  Everything is derived from one seeded PRNG stream: no wall
   clocks, so the emitted bytes are reproducible run to run. *)
let make_events () =
  let rng = Prng.Stream.of_seed seed in
  let ops = [| "read"; "write"; "publish" |] in
  let statuses = [| "ok"; "ok"; "ok"; "ok"; "timeout"; "failed" |] in
  let events = ref [] in
  let push e = events := e :: !events in
  for round = 0 to rounds - 1 do
    for _ = 1 to requests_per_round do
      let latency = 1 + Prng.Stream.int rng 200 in
      push
        (Simnet.Trace.Request
           {
             op = ops.(Prng.Stream.int rng (Array.length ops));
             round;
             client = Prng.Stream.int rng 4096;
             latency;
             hops = Prng.Stream.int rng 12;
             status = statuses.(Prng.Stream.int rng (Array.length statuses));
           })
    done;
    if Prng.Stream.int rng 4 = 0 then
      push
        (Simnet.Trace.Fault
           {
             kind = "drop";
             round;
             fields =
               [
                 ("src", Simnet.Trace.Int (Prng.Stream.int rng 4096));
                 ("dst", Simnet.Trace.Int (Prng.Stream.int rng 4096));
               ];
           });
    push
      (Simnet.Trace.Round
         {
           round;
           msgs = Prng.Stream.int rng 100_000;
           bits = Prng.Stream.int rng 10_000_000;
           max_node_bits = Prng.Stream.int rng 50_000;
           max_node_msgs = Prng.Stream.int rng 500;
           blocked = Prng.Stream.int rng 64;
         })
  done;
  List.rev !events

(* Emit [events] through a [format] sink into [path]; returns
   (bytes in file, events/sec over emit+close). *)
let measure_sink ~format ~path events =
  let wall0 = Unix.gettimeofday () in
  let t = Simnet.Trace.open_file ~format path in
  List.iter (Simnet.Trace.emit t) events;
  Simnet.Trace.close t;
  let wall = Unix.gettimeofday () -. wall0 in
  let bytes = (Unix.stat path).Unix.st_size in
  (bytes, float_of_int (List.length events) /. wall)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_export_equivalence ~jsonl_path ~bin_path =
  let buf = Buffer.create (1 lsl 20) in
  Simnet.Trace.fold_binary_file bin_path ~init:() ~f:(fun () ev ->
      Buffer.add_string buf (Simnet.Trace.jsonl_of_event ev);
      Buffer.add_char buf '\n');
  if Buffer.contents buf <> read_file jsonl_path then
    failwith "trace bench: binary export does not match the JSONL sink"

module Windowed_hist = Stats.Windowed.Make (Stats.Log_histogram)

let check_windowed_equivalence events =
  let flat = Stats.Log_histogram.create () in
  let mk retain =
    Windowed_hist.create ~window:100 ~retain
      ~empty:Stats.Log_histogram.create ()
  in
  let retained = mk true and folded = mk false in
  List.iter
    (function
      | Simnet.Trace.Request { round; latency; _ } ->
          Stats.Log_histogram.add flat latency;
          Windowed_hist.observe retained ~round (fun h ->
              Stats.Log_histogram.add h latency);
          Windowed_hist.observe folded ~round (fun h ->
              Stats.Log_histogram.add h latency)
      | _ -> ())
    events;
  List.iter
    (fun w ->
      if not (Stats.Log_histogram.equal (Windowed_hist.total w) flat) then
        failwith "trace bench: windowed latency total diverges from flat")
    [ retained; folded ]

let with_temp suffix f =
  let path = Filename.temp_file "trace_bench" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (
    fun () -> f path)

let run () =
  let events = make_events () in
  let n = List.length events in
  Printf.printf
    "trace sink bench: %d events (%d rounds x ~%d requests + faults)\n%!" n
    rounds requests_per_round;
  with_temp ".jsonl" (fun jsonl_path ->
      with_temp ".bin" (fun bin_path ->
          let jsonl_bytes, jsonl_rate =
            measure_sink ~format:Simnet.Trace.Jsonl ~path:jsonl_path events
          in
          let bin_bytes, bin_rate =
            measure_sink ~format:Simnet.Trace.Binary ~path:bin_path events
          in
          check_export_equivalence ~jsonl_path ~bin_path;
          check_windowed_equivalence events;
          let per_event bytes = float_of_int bytes /. float_of_int n in
          let ratio = per_event jsonl_bytes /. per_event bin_bytes in
          Printf.printf "  %-8s %9d bytes  %6.1f bytes/event  %8.2f Mev/s\n%!"
            "jsonl" jsonl_bytes (per_event jsonl_bytes) (jsonl_rate /. 1e6);
          Printf.printf "  %-8s %9d bytes  %6.1f bytes/event  %8.2f Mev/s\n%!"
            "binary" bin_bytes (per_event bin_bytes) (bin_rate /. 1e6);
          Printf.printf "  ratio: %.2fx fewer bytes/event (binary)\n%!" ratio;
          let json =
            Printf.sprintf
              {|{"name":"trace","events":%d,"jsonl":{"bytes":%d,"bytes_per_event":%.2f,"events_per_sec":%.0f},"bin":{"bytes":%d,"bytes_per_event":%.2f,"events_per_sec":%.0f},"bytes_ratio":%.4f}|}
              n jsonl_bytes (per_event jsonl_bytes) jsonl_rate bin_bytes
              (per_event bin_bytes) bin_rate ratio
          in
          let oc = open_out "BENCH_trace.json" in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          print_endline json;
          if ratio < 5.0 then
            failwith
              (Printf.sprintf
                 "trace bench: binary sink only %.2fx smaller than JSONL \
                  (expected >= 5x)"
                 ratio)))
