(* Experiment E16: end-to-end request latency and goodput under attack.

   Theorem 8 promises that the Section 7 applications keep serving every
   request with polylogarithmic congestion while the network is being
   reconfigured under a late adversary.  E16 measures that promise from the
   client's side: an open-loop workload (Poisson arrivals, Zipf keys, a
   read/write/publish mix) runs against the robust DHT / pub-sub stack in
   three environments — no attack, a hot-group DoS blocker plus message
   drops, and coarse churn plus message drops — each with periodic
   reconfiguration and with the static baseline that never reshuffles.

   Expected shape (checked by test/test_workload.ml on a smaller instance):
   - with reconfiguration, goodput stays >= 0.99 in every environment and
     the served p99 stays bounded (a few multiples of the hop bound d);
   - the static baseline collapses under the group-kill adversary: its
     stale view of the server-to-group assignment never goes stale, so the
     hot groups stay starved and goodput visibly drops while timeouts and
     failures pile up.

   Cells run sequentially on purpose and share one seed: the environment is
   the only moving part, and the `--trace` stream plus the BENCH_e16.json
   summary must be byte-identical across runs of the same build. *)

open Exp_util

let n = 1024
let period = 8
let rounds = 3 * period
let clients = 96

type env = {
  env_name : string;
  attack : Workload.Attack.strategy;
  frac : float;
  churn : Workload.Driver.churn option;
  drop : float;
  retries : int;
}

let envs =
  [
    {
      env_name = "no attack";
      attack = Workload.Attack.No_attack;
      frac = 0.0;
      churn = None;
      drop = 0.0;
      retries = 0;
    };
    {
      env_name = "DoS + faults";
      attack = Workload.Attack.Group_kill;
      frac = 0.2;
      churn = None;
      drop = 0.05;
      retries = 3;
    };
    {
      env_name = "churn + faults";
      attack = Workload.Attack.No_attack;
      frac = 0.0;
      churn = Some { Workload.Driver.frac = 0.15; epoch = 8 };
      drop = 0.05;
      retries = 3;
    };
  ]

let modes =
  [ ("reconfig", Workload.Driver.Reconfig); ("static", Workload.Driver.Static) ]

let run_cell ~spec ~env ~mode =
  (* Same seed for every cell: the workload schedule and all protocol
     randomness are identical across the sweep; only the environment and
     the reconfiguration mode move. *)
  let seed = seed_for "e16" n in
  let faults =
    if env.drop > 0.0 then Some (Simnet.Faults.make ~drop:env.drop ()) else None
  in
  let cfg =
    Workload.Driver.config ~mode ~period ~attack:env.attack ~frac:env.frac
      ~lateness:period ?churn:env.churn ?faults ~retries:env.retries spec
  in
  let report = Workload.Driver.run ~trace:(trace ()) ~seed ~n cfg in
  let per_msg_bits =
    Simnet.Msg_size.ids_msg ~id_bits:(Simnet.Msg_size.id_bits n) ~count:1 + 64
  in
  let bench =
    {
      Sweep.Agg.rounds;
      total_bits = report.Workload.Driver.hop_msgs * per_msg_bits;
      max_node_bits = report.Workload.Driver.max_group_load * per_msg_bits;
    }
  in
  (report, bench)

let add_rows table ~spec =
  let note, bench_total = tally () in
  List.iter
    (fun env ->
      List.iter
        (fun (mode_name, mode) ->
          let r, b = run_cell ~spec ~env ~mode in
          note b;
          let t = r.Workload.Driver.total in
          Stats.Table.add_row table
            [
              env.env_name;
              mode_name;
              int_c t.Workload.Driver.issued;
              flt ~decimals:3 (Workload.Driver.goodput t);
              int_c (Workload.Driver.percentile t 0.50);
              int_c (Workload.Driver.percentile t 0.90);
              int_c (Workload.Driver.percentile t 0.99);
              int_c t.Workload.Driver.slo_miss;
              int_c t.Workload.Driver.timed_out;
              int_c t.Workload.Driver.failed;
              int_c r.Workload.Driver.max_group_load;
            ])
        modes)
    envs;
  bench_total ()

let columns =
  [
    "environment"; "mode"; "issued"; "goodput"; "p50"; "p90"; "p99";
    "slo miss"; "timeout"; "failed"; "max group load";
  ]

let e16 () =
  let dht_spec =
    Workload.Spec.make ~clients ~rounds ~keys:256
      ~arrivals:(Workload.Spec.Open_loop { rate = 0.5 })
      ~mix:{ Workload.Spec.read = 0.7; write = 0.2; publish = 0.1 }
      ~popularity:(Workload.Spec.Zipf 1.1) ~slo:8 ~timeout:16 ()
  in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E16 (Thm 8, client view) - DHT workload: open loop rate 0.5, \
            zipf 1.1, mix 70/20/10, n=%d, %d clients, %d rounds, period=%d"
           n clients rounds period)
      ~columns
  in
  let bench_dht = add_rows table ~spec:dht_spec in
  Stats.Table.note table
    "latencies are rounds from arrival to completion (queueing + 1 + hops \
     per DHT operation); goodput = served / issued";
  Stats.Table.note table
    "the DoS adversary blocks the members of the hottest supernode groups \
     through a period-late view: reconfiguration invalidates that view \
     every period, the static baseline leaves it accurate forever";
  Stats.Table.print table;
  let pubsub_spec =
    Workload.Spec.make ~clients ~rounds ~keys:64
      ~arrivals:(Workload.Spec.Open_loop { rate = 0.35 })
      ~mix:{ Workload.Spec.read = 0.2; write = 0.1; publish = 0.7 }
      ~popularity:(Workload.Spec.Zipf 1.2) ~slo:12 ~timeout:20 ()
  in
  let table2 =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E16b (Thm 8, client view) - pub-sub workload: open loop rate \
            0.35, zipf 1.2, mix 20/10/70, n=%d, %d clients, %d rounds"
           n clients rounds)
      ~columns
  in
  let bench_pubsub = add_rows table2 ~spec:pubsub_spec in
  Stats.Table.note table2
    "a publish is three chained DHT operations (counter read, payload \
     write, counter write), so its latency floor is 3 + hops and the \
     counter groups of hot topics dominate max group load";
  Stats.Table.print table2;
  Bench.add bench_dht bench_pubsub
