(* Experiment E15: fault tolerance of the reconfiguration machinery.

   The paper's model has no ordinary message faults (its failure modes are
   the churner and the t-late blocker), so this table is an extension, not a
   reproduction: it sweeps a per-message drop rate (applied to the Phase-3
   pointer-doubling replies of every epoch, see docs/fault_model.md) against
   the drivers' recovery budget and measures how gracefully the Section 4
   network degrades.

   Expected shape, enforced by test/test_simnet_faults.ml:
   - epochs-ok is monotone non-increasing in the drop rate for each policy;
   - at drop >= 0.05 the retry policy strictly dominates the fixed one
     (the fixed drivers fail typed on the first lost needed reply, so their
     success probability collapses like (1-p)^Q);
   - a failed epoch never installs a wrong cycle: the old topology stands
     (stale pointers are counted, validity is re-checked by
     Simnet.Invariants on every success).

   Everything here runs sequentially on purpose: the BENCH_e15.json summary
   must be byte-identical across runs of the same build. *)

open Exp_util

type cell_outcome = {
  epochs_ok : int;
  sampling_retries : int;
  reply_retries : int;
  stale_pointers : int;
  min_reachable : float;
}

let drop_rates = [ 0.0; 0.02; 0.05; 0.1 ]
let epochs = 8
let n = 256

let run_cell ~drop ~retry =
  (* Same seed for every cell: the fault stream is separate from the
     protocol streams, so the fault-free protocol randomness is identical
     across the whole sweep and the drop rate is the only moving part. *)
  let s = rng_for "e15" n in
  let faults =
    if drop > 0.0 then Some (Simnet.Faults.make ~drop ()) else None
  in
  let net =
    Core.Churn_network.create ~trace:(trace ()) ?faults ~retry
      ~rng:(Prng.Stream.split s) ~n ()
  in
  let ok = ref 0 and s_retries = ref 0 and r_retries = ref 0 in
  let stale = ref 0 and min_reach = ref 1.0 in
  let bench = ref Bench.zero in
  for _ = 1 to epochs do
    let plan =
      Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
        ~rng:(Prng.Stream.split s)
        ~graph:(Core.Churn_network.graph net) ~leave_frac:0.25 ~join_frac:0.25
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    bench :=
      Bench.add !bench
        {
          Sweep.Agg.rounds = r.Core.Churn_network.rounds;
          total_bits = r.Core.Churn_network.reconfig_bits;
          max_node_bits = r.Core.Churn_network.max_node_round_bits;
        };
    if r.Core.Churn_network.valid && r.Core.Churn_network.connected then
      incr ok;
    s_retries := !s_retries + r.Core.Churn_network.sampling_retries;
    r_retries := !r_retries + r.Core.Churn_network.reply_retries;
    stale := !stale + r.Core.Churn_network.stale_pointers;
    min_reach := Float.min !min_reach r.Core.Churn_network.reachable_fraction
  done;
  ( {
      epochs_ok = !ok;
      sampling_retries = !s_retries;
      reply_retries = !r_retries;
      stale_pointers = !stale;
      min_reachable = !min_reach;
    },
    !bench )

let e15 () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E15 (fault-model extension) - reply-drop rate x recovery policy, \
            n=%d, %d churn epochs (25%%/25%%)"
           n epochs)
      ~columns:
        [
          "drop"; "policy"; "epochs ok"; "sampling retries"; "reply retries";
          "stale pointers"; "min reachable";
        ]
  in
  let policies =
    [ ("fixed (0)", Core.Retry.fixed); ("retry 3", Core.Retry.make ()) ]
  in
  (* drop x policy grid via the sweep engine; domains:1 keeps the shared
     trace sink ordered and preserves the sequential-run guarantee above *)
  let cells =
    grid ~sweep:"e15"
      [
        Sweep.Grid.floats "drop" drop_rates;
        Sweep.Grid.strings "policy" (List.map fst policies);
      ]
  in
  let rows, bench_total =
    sweep_rows ~domains:1 ~sweep:"e15" cells (fun cell ->
        let drop = Sweep.Grid.float_binding cell "drop" in
        let label = Sweep.Grid.binding cell "policy" in
        let retry = List.assoc label policies in
        let r, b = run_cell ~drop ~retry in
        ( [
            flt ~decimals:2 drop;
            label;
            Printf.sprintf "%d/%d" r.epochs_ok epochs;
            int_c r.sampling_retries;
            int_c r.reply_retries;
            int_c r.stale_pointers;
            flt ~decimals:3 r.min_reachable;
          ],
          b ))
  in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "a fixed-budget epoch fails typed on the first lost needed reply \
     (success ~ (1-p)^Q), so it collapses as soon as drops appear; the \
     retry policy re-issues lost replies and keeps reconfiguring";
  Stats.Table.note table
    "failed epochs keep the old (still connected) topology: min reachable \
     stays 1.0 - degradation shows up as lost liveness, never as a wrong \
     cycle";
  Stats.Table.print table;
  bench_total
