(* Wall-clock micro-benchmarks (Bechamel): one Test.make per experiment
   driver, at small sizes.  These measure the cost of the *simulator*, not
   any claim of the paper; they exist to keep the harness's own performance
   visible. *)

open Bechamel
open Toolkit

let test_rapid_hgraph =
  Test.make ~name:"rapid-hgraph n=512"
    (Staged.stage (fun () ->
         let s = Prng.Stream.of_seed 1L in
         let g = Topology.Hgraph.random (Prng.Stream.split s) ~n:512 ~d:8 in
         ignore (Core.Rapid_hgraph.run ~rng:(Prng.Stream.split s) g)))

let test_plain_hgraph =
  Test.make ~name:"plain-walks n=512"
    (Staged.stage (fun () ->
         let s = Prng.Stream.of_seed 2L in
         let g = Topology.Hgraph.random (Prng.Stream.split s) ~n:512 ~d:8 in
         ignore (Core.Rapid_hgraph.run_plain ~k:4 ~rng:(Prng.Stream.split s) g)))

let test_rapid_hypercube =
  Test.make ~name:"rapid-hypercube d=9"
    (Staged.stage (fun () ->
         let s = Prng.Stream.of_seed 3L in
         let cube = Topology.Hypercube.create 9 in
         ignore (Core.Rapid_hypercube.run ~rng:s cube)))

let test_churn_epoch =
  Test.make ~name:"churn epoch n=512 (incl. setup)"
    (Staged.stage (fun () ->
         let s = Prng.Stream.of_seed 4L in
         let net = Core.Churn_network.create ~rng:s ~n:512 () in
         ignore (Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||])))

let dos_net =
  lazy
    (let s = Prng.Stream.of_seed 5L in
     Core.Dos_network.create ~c:2.0 ~rng:s ~n:2048 ())

let test_dos_round =
  Test.make ~name:"dos round n=2048"
    (Staged.stage (fun () ->
         let net = Lazy.force dos_net in
         ignore
           (Core.Dos_network.run_round net
              ~blocked:(Array.make (Core.Dos_network.n net) false))))

let dht =
  lazy
    (let s = Prng.Stream.of_seed 6L in
     Apps.Robust_dht.create ~rng:s ~n:2048 ())

let test_dht_op =
  let counter = ref 0 in
  Test.make ~name:"dht write+read n=2048"
    (Staged.stage (fun () ->
         let d = Lazy.force dht in
         let blocked = Array.make (Apps.Robust_dht.n d) false in
         incr counter;
         ignore
           (Apps.Robust_dht.execute d ~blocked
              (Apps.Robust_dht.Write (!counter, "x")));
         ignore (Apps.Robust_dht.execute d ~blocked (Apps.Robust_dht.Read !counter))))

let test_rapid_kary =
  Test.make ~name:"rapid-kary k=4 d=4"
    (Staged.stage (fun () ->
         let s = Prng.Stream.of_seed 7L in
         let cube = Topology.Kary_hypercube.create ~k:4 ~d:4 in
         ignore (Core.Rapid_kary.run ~rng:s cube)))

let test_staged_batch =
  Test.make ~name:"staged read batch 512 keys"
    (Staged.stage (fun () ->
         let d = Lazy.force dht in
         let blocked = Array.make (Apps.Robust_dht.n d) false in
         let keys = Array.init 512 (fun i -> i mod 64) in
         ignore (Apps.Staged_router.read_batch ~dht:d ~blocked ~keys)))

let test_engine_roundtrip =
  (* Guards the zero-cost-when-off claim for tracing: an engine round-trip
     with the null trace must not regress when trace emission sites land in
     end_round/send. *)
  Test.make ~name:"engine round-trip n=1024"
    (Staged.stage (fun () ->
         let n = 1024 in
         let eng = Simnet.Engine.create ~n ~msg_bits:(fun () -> 1) () in
         for _ = 1 to 4 do
           Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
               Simnet.Engine.send eng ~src:me ~dst:((me + 1) mod n) ())
         done))

let test_group_sim_window =
  Test.make ~name:"group-sim full window n=512"
    (Staged.stage (fun () ->
         let s = Prng.Stream.of_seed 9L in
         let cube = Topology.Hypercube.create 5 in
         let gs =
           Core.Group_sim.create ~rng:s ~n:512
             ~group_of:(Array.init 512 (fun v -> v mod 32))
             (Core.Supernode_sampling.protocol ~cube ())
         in
         Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ ->
             Array.make 512 false)))

let all_tests =
  Test.make_grouped ~name:"overlay-reconfig"
    [
      test_rapid_hgraph; test_plain_hgraph; test_rapid_hypercube;
      test_rapid_kary; test_churn_epoch; test_dos_round; test_dht_op;
      test_staged_batch; test_engine_roundtrip; test_group_sim_window;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let run () =
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let results = benchmark () in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image (Notty_unix.eol img)
