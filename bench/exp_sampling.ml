(* Experiments E1-E4: the rapid node sampling primitives (Section 3).

   The paper is a theory paper with no tables of its own; each experiment
   regenerates the quantitative content of a theorem (see DESIGN.md,
   "Experiment index").  E1/E2 reproduce the headline round-complexity
   separation of Theorems 2 and 3 against the plain-random-walk baseline of
   Section 2.3; E3 reproduces the distribution-quality claims (Lemma 2,
   Lemma 3, Theorem 3); E4 reproduces the success-probability threshold of
   the multiset schedules (Lemmas 7 and 9). *)

open Exp_util

let sr (r : Core.Sampling_result.t) = r

(* ---------- E1: rounds and work, H-graphs (Theorem 2) ---------- *)

let e1 () =
  let table =
    Stats.Table.create
      ~title:
        "E1 (Theorem 2) - rapid sampling on H-graphs vs plain random walks"
      ~columns:
        [
          "n"; "log2 n"; "rapid rounds"; "rapid work (bits/round)";
          "samples/node"; "underflows"; "plain rounds"; "plain work (bits/round)";
        ]
  in
  let rapid_series = ref [] and plain_series = ref [] in
  let note, bench_total = tally () in
  List.iter
    (fun n ->
      let s = rng_for "e1" n in
      let g = Topology.Hgraph.random (Prng.Stream.split s) ~n ~d:8 in
      let fast =
        sr (Core.Rapid_hgraph.run ~trace:(trace ()) ~rng:(Prng.Stream.split s) g)
      in
      let slow =
        sr (Core.Rapid_hgraph.run_plain ~k:4 ~rng:(Prng.Stream.split s) g)
      in
      note (Bench.of_result fast);
      note (Bench.of_result slow);
      rapid_series :=
        (float_of_int n, float_of_int fast.Core.Sampling_result.rounds)
        :: !rapid_series;
      plain_series :=
        (float_of_int n, float_of_int slow.Core.Sampling_result.rounds)
        :: !plain_series;
      Stats.Table.add_row table
        [
          int_c n;
          int_c (Core.Params.log2i_ceil n);
          int_c fast.Core.Sampling_result.rounds;
          int_c fast.Core.Sampling_result.max_round_node_bits;
          int_c (Core.Sampling_result.samples_per_node fast);
          int_c fast.Core.Sampling_result.underflows;
          int_c slow.Core.Sampling_result.rounds;
          int_c slow.Core.Sampling_result.max_round_node_bits;
        ])
    (ns_pow2 8 13);
  Stats.Table.note table
    (Printf.sprintf "rapid rounds grow like %s; plain rounds grow like %s"
       (growth_of_series (List.rev !rapid_series))
       (growth_of_series (List.rev !plain_series)));
  Stats.Table.note table
    "paper: rapid needs O(log log n) rounds (Thm 2); plain walks need \
     Theta(log n) (Sec 2.3) - an exponential separation";
  Stats.Table.print table;
  bench_total ()

(* ---------- E2: rounds and work, hypercube (Theorem 3) ---------- *)

let e2 () =
  let table =
    Stats.Table.create
      ~title:"E2 (Theorem 3) - rapid sampling on the hypercube vs token walks"
      ~columns:
        [
          "n"; "d"; "rapid rounds"; "rapid work (bits/round)"; "samples/node";
          "underflows"; "plain rounds"; "plain work (bits/round)";
        ]
  in
  let rapid_series = ref [] and plain_series = ref [] in
  let note, bench_total = tally () in
  List.iter
    (fun d ->
      let cube = Topology.Hypercube.create d in
      let n = Topology.Hypercube.node_count cube in
      let s = rng_for "e2" d in
      let fast =
        sr
          (Core.Rapid_hypercube.run ~trace:(trace ())
             ~rng:(Prng.Stream.split s) cube)
      in
      let slow =
        sr (Core.Rapid_hypercube.run_plain ~k:4 ~rng:(Prng.Stream.split s) cube)
      in
      note (Bench.of_result fast);
      note (Bench.of_result slow);
      rapid_series :=
        (float_of_int n, float_of_int fast.Core.Sampling_result.rounds)
        :: !rapid_series;
      plain_series :=
        (float_of_int n, float_of_int slow.Core.Sampling_result.rounds)
        :: !plain_series;
      Stats.Table.add_row table
        [
          int_c n;
          int_c d;
          int_c fast.Core.Sampling_result.rounds;
          int_c fast.Core.Sampling_result.max_round_node_bits;
          int_c (Core.Sampling_result.samples_per_node fast);
          int_c fast.Core.Sampling_result.underflows;
          int_c slow.Core.Sampling_result.rounds;
          int_c slow.Core.Sampling_result.max_round_node_bits;
        ])
    [ 8; 9; 10; 11; 12; 13 ];
  Stats.Table.note table
    (Printf.sprintf "rapid rounds grow like %s; plain rounds grow like %s"
       (growth_of_series (List.rev !rapid_series))
       (growth_of_series (List.rev !plain_series)));
  Stats.Table.note table
    "paper: 2 ceil(log2 d) rounds vs d + 1 rounds; both sample exactly \
     uniformly (see E3)";
  Stats.Table.print table;
  bench_total ()

(* ---------- E3: distribution quality (Lemmas 2-3, Theorem 3) ---------- *)

let tv_of_sampler ~note label runs sample_run n =
  let counts = Array.make n 0 in
  for trial = 1 to runs do
    let r = sample_run (rng_for label trial) in
    note (Bench.of_result r);
    Array.iter
      (Array.iter (fun v -> counts.(v) <- counts.(v) + 1))
      r.Core.Sampling_result.samples
  done;
  let total = Array.fold_left ( + ) 0 counts in
  ( Stats.Distance.tv_counts_uniform counts,
    Stats.Distance.expected_tv_noise_floor ~samples:total ~cells:n,
    Stats.Chi_square.test_uniform counts,
    total )

(* Exact per-source walk distribution: t sparse matrix-vector products on
   the H-graph's transition matrix.  Aggregating samples over all sources
   would hide the bias (the average of P^t(v, .) over v is exactly uniform
   for any doubly stochastic P), so Lemma 2 must be checked per source. *)
let exact_walk_tv g ~source ~t =
  let n = Topology.Hgraph.n g in
  let d = float_of_int (Topology.Hgraph.degree g) in
  let cycles = Topology.Hgraph.cycles g in
  let p = Array.make n 0.0 in
  p.(source) <- 1.0;
  let q = Array.make n 0.0 in
  let p = ref p and q = ref q in
  for _ = 1 to t do
    Array.fill !q 0 n 0.0;
    for v = 0 to n - 1 do
      let mass = !p.(v) /. d in
      if mass > 0.0 then
        for c = 0 to cycles - 1 do
          let s = Topology.Hgraph.succ g ~cycle:c v in
          let pr = Topology.Hgraph.pred g ~cycle:c v in
          !q.(s) <- !q.(s) +. mass;
          !q.(pr) <- !q.(pr) +. mass
        done
    done;
    let tmp = !p in
    p := !q;
    q := tmp
  done;
  Stats.Distance.tv_from_uniform !p

let e3 () =
  let n = 1024 in
  let s0 = rng_for "e3-graph" 0 in
  let g = Topology.Hgraph.random s0 ~n ~d:8 in
  (* E3a: exact per-source mixing (Lemma 2) *)
  let table_a =
    Stats.Table.create
      ~title:
        "E3a (Lemma 2) - exact per-source walk distribution vs walk length, \
         H-graph n=1024, d=8"
      ~columns:[ "walk length"; "alpha equiv"; "TV(P^t(v,.), uniform)" ]
  in
  List.iter
    (fun t ->
      let alpha = float_of_int t /. (2.0 *. Core.Params.log2f (float_of_int n)) in
      Stats.Table.add_row table_a
        [
          int_c t; flt ~decimals:2 alpha;
          Printf.sprintf "%.2e" (exact_walk_tv g ~source:0 ~t);
        ])
    [ 2; 5; 10; 20; 32; 40; 64 ];
  Stats.Table.note table_a
    "paper: walks of length 2 alpha log_{d/4} n (= 20 alpha here) are within \
     n^-alpha of uniform (Lemma 2); short walks are visibly biased from a \
     fixed source, which is why the primitives build Theta(log n)-length \
     walks";
  Stats.Table.print table_a;
  (* E3b: empirical aggregate uniformity of the primitives *)
  let table =
    Stats.Table.create
      ~title:
        "E3b (Lemma 3 / Theorem 3) - sampling primitives vs uniform, n=1024"
      ~columns:
        [ "sampler"; "walk len"; "samples"; "TV dist"; "noise floor"; "chi2 p" ]
  in
  let cube = Topology.Hypercube.create 10 in
  let row name walk_len (tv, floor, p, total) =
    Stats.Table.add_row table
      [
        name; int_c walk_len; int_c total; flt ~decimals:4 tv;
        flt ~decimals:4 floor; flt ~decimals:3 p;
      ]
  in
  let wl alpha = Core.Params.walk_length ~alpha ~d:8 ~n in
  let note, bench_total = tally () in
  row "rapid H-graph (alpha=1)" (wl 1.0)
    (tv_of_sampler ~note "e3-rh1" 3
       (fun r -> Core.Rapid_hgraph.run ~alpha:1.0 ~rng:r g)
       n);
  row "rapid H-graph (alpha=2)" (wl 2.0)
    (tv_of_sampler ~note "e3-rh2" 3
       (fun r -> Core.Rapid_hgraph.run ~alpha:2.0 ~rng:r g)
       n);
  row "plain H-graph (alpha=1)" (wl 1.0)
    (tv_of_sampler ~note "e3-p1" 3
       (fun r -> Core.Rapid_hgraph.run_plain ~alpha:1.0 ~k:20 ~rng:r g)
       n);
  row "rapid hypercube" 10
    (tv_of_sampler ~note "e3-rc" 3
       (fun r -> Core.Rapid_hypercube.run ~rng:r cube)
       n);
  row "plain hypercube tokens" 10
    (tv_of_sampler ~note "e3-pc" 3
       (fun r -> Core.Rapid_hypercube.run_plain ~k:20 ~rng:r cube)
       n);
  Stats.Table.note table
    "paper: rapid samples are almost uniform - aggregate TV sits at the \
     statistical noise floor and chi-square cannot reject uniformity \
     (Lemma 3 / Theorem 3)";
  Stats.Table.print table;
  bench_total ()

(* ---------- E4: success threshold of the schedules (Lemmas 7/9) ---------- *)

let e4 () =
  let table =
    Stats.Table.create
      ~title:
        "E4 (Lemmas 7/9, ablation A3) - failure probability vs schedule \
         constant c"
      ~columns:
        [
          "primitive"; "c"; "runs"; "runs w/ underflow"; "mean underflows";
          "samples/node";
        ]
  in
  let n = 512 in
  let runs = 10 in
  let g = Topology.Hgraph.random (rng_for "e4-graph" 0) ~n ~d:8 in
  let cube = Topology.Hypercube.create 9 in
  let cs = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  (* primitive x c grid, fanned out through the sweep engine; each
     (primitive, c, trial) derives its own seed, so cells are
     independent of sharding and domain count *)
  let cells =
    grid ~sweep:"e4"
      [
        Sweep.Grid.strings "primitive" [ "H-graph"; "hypercube" ];
        Sweep.Grid.floats "c" cs;
      ]
  in
  let rows, bench =
    sweep_rows ~sweep:"e4" cells (fun cell ->
        let name = Sweep.Grid.binding cell "primitive" in
        let c = Sweep.Grid.float_binding cell "c" in
        let run_with r =
          match name with
          | "H-graph" -> Core.Rapid_hgraph.run ~eps:1.0 ~c ~rng:r g
          | _ -> Core.Rapid_hypercube.run ~eps:1.0 ~c ~rng:r cube
        in
        let failures = ref 0 and total_underflows = ref 0 in
        let spn = ref max_int in
        let b = ref Bench.zero in
        for trial = 1 to runs do
          let r = run_with (rng_for (name ^ string_of_float c) trial) in
          b := Bench.add !b (Bench.of_result r);
          if r.Core.Sampling_result.underflows > 0 then incr failures;
          total_underflows :=
            !total_underflows + r.Core.Sampling_result.underflows;
          spn := min !spn (Core.Sampling_result.samples_per_node r)
        done;
        ( [
            name; flt ~decimals:2 c; int_c runs; int_c !failures;
            flt ~decimals:1
              (float_of_int !total_underflows /. float_of_int runs);
            int_c !spn;
          ],
          !b ))
  in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "paper: for c above the (unstated) constant of Lemmas 7/9 the algorithm \
     succeeds w.h.p.; small c underflows routinely - the experiment locates \
     the threshold";
  Stats.Table.print table;
  bench
