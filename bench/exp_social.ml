(* Experiment E20: the Reddit-style social application under attack and
   session churn, across the three overlay configurations.

   Each cell runs the identical five-class social workload (feed reads
   dominating posts/comments/votes/DMs, repost fan-out, zipf subreddit
   popularity) against one of: the reconfigurable supernode DHT, its
   static no-reshuffle ablation, and the Chord ring.  Paired cells share
   the per-cell seed (only the backend= segment is stripped from the id),
   so all three configurations face draw-for-draw identical request
   schedules, session cycles and adversary budgets.

   The adversary is given the application's real hot spots — the
   subreddit publication counters — so a group-kill lands exactly where
   the feed reads go.  The headline claim mirrors the paper's: under a
   20% group-kill the reconfiguration backend holds every class's SLO
   (classes-ok = 5), while the static ablation loses whole classes — its
   supernode assignment never moves, so the period-late view stays
   accurate and the hot counters stay dead.

   The grid runs through Sweep.Exec, so the table, the BENCH_e20.json
   cells array, and any checkpoint artifact are byte-identical at every
   domain count. *)

open Exp_util

let n = 512
let users = 64
let rounds = 48
let period = 8
let attack_frac = 0.2

(* A class holds its SLO when at least 90% of its issued requests were
   served within the class budget. *)
let slo_held_frac = 0.9

let cells =
  match
    Sweep.Grid.expand
      ~base:{ Simnet.Scenario.default with n; app = Some "social" }
      ~sweep:"e20"
      [
        Sweep.Grid.scenario_key "backend" [ "reconfig"; "static"; "chord" ];
        Sweep.Grid.scenario_key "adversary" [ "none"; "group-kill" ];
        Sweep.Grid.scenario_key "session" [ "1:8"; "0.85:8" ];
      ]
  with
  | Ok cells -> cells
  | Error e -> failwith e

(* Seed from the cell id with the backend binding stripped: paired cells
   (same environment, different configuration) get identical schedules,
   session cycles, and environment draws. *)
let paired_seed (cell : Sweep.Grid.cell) =
  let env_id =
    cell.Sweep.Grid.id |> String.split_on_char ';'
    |> List.filter (fun s -> not (String.starts_with ~prefix:"backend=" s))
    |> String.concat ";"
  in
  Sweep.Grid.seed_of ~sweep:"e20" env_id

let slo_frac (c : Workload.Driver.class_report) =
  if c.Workload.Driver.issued = 0 then 1.0
  else
    float_of_int (c.Workload.Driver.ok - c.Workload.Driver.slo_miss)
    /. float_of_int c.Workload.Driver.issued

let run_cell (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  let attack =
    match sc.Simnet.Scenario.adversary with
    | None -> Workload.Attack.No_attack
    | Some s -> (
        match Workload.Attack.parse_strategy s with
        | Ok a -> a
        | Error e -> invalid_arg e)
  in
  let mode, backend =
    match sc.Simnet.Scenario.backend with
    | Some "chord" ->
        ( Workload.Driver.Reconfig,
          Workload.Driver.Chord
            {
              Workload.Driver.fingers = sc.Simnet.Scenario.chord_fingers;
              succs = sc.Simnet.Scenario.chord_succs;
              period = sc.Simnet.Scenario.chord_period;
            } )
    | Some "static" -> (Workload.Driver.Static, Workload.Driver.Robust)
    | _ -> (Workload.Driver.Reconfig, Workload.Driver.Robust)
  in
  let app =
    Apps.Social.config ~users ~rounds ?topics:sc.Simnet.Scenario.topics
      ?fanout:sc.Simnet.Scenario.fanout ?session:sc.Simnet.Scenario.session ()
  in
  let cfg =
    Workload.Social.config ~mode ~period ~backend ~attack ~frac:attack_frac
      ~lateness:period app
  in
  let report =
    Workload.Social.run ~seed:(paired_seed cell) ~n:sc.Simnet.Scenario.n cfg
  in
  let classes = report.Workload.Social.classes in
  let classes_ok =
    List.length (List.filter (fun c -> slo_frac c >= slo_held_frac) classes)
  in
  (* per-class cells pack goodput / p99 / slo-fraction *)
  let packed c =
    Printf.sprintf "%.3f/%d/%.3f"
      (Workload.Driver.goodput c)
      (Workload.Driver.percentile c 0.99)
      (slo_frac c)
  in
  let row =
    [
      Option.value sc.Simnet.Scenario.backend ~default:"reconfig";
      Option.value sc.Simnet.Scenario.adversary ~default:"none";
      (match sc.Simnet.Scenario.session with
      | None -> "-"
      | Some (online, epoch) ->
          Printf.sprintf "%s:%d" (Stats.Float_text.repr online) epoch);
    ]
    @ List.map packed classes
    @ [
        int_c classes_ok;
        int_c report.Workload.Social.total_bits;
      ]
  in
  let bench =
    {
      Sweep.Agg.rounds;
      total_bits = report.Workload.Social.total_bits;
      max_node_bits = 0;
    }
  in
  (row, bench)

let class_names = List.map Apps.Social.class_name Apps.Social.classes

(* One JSON object per cell, rebuilt from the printed rows so the summary
   is a pure function of the same domain-count-invariant artifact. *)
let cells_json rows =
  let obj row =
    match row with
    | backend :: attack :: session :: rest ->
        let classes, tail =
          ( List.filteri (fun i _ -> i < List.length class_names) rest,
            List.filteri (fun i _ -> i >= List.length class_names) rest )
        in
        let cls name packed =
          match String.split_on_char '/' packed with
          | [ g; p99; sf ] ->
              Printf.sprintf {|"%s":{"goodput":%s,"p99":%s,"slo_frac":%s}|}
                name g p99 sf
          | _ -> failwith "e20: unexpected class cell shape"
        in
        let classes_ok, bits =
          match tail with
          | [ ok; bits ] -> (ok, bits)
          | _ -> failwith "e20: unexpected row shape"
        in
        Printf.sprintf
          {|{"backend":"%s","attack":"%s","session":"%s",%s,"classes_ok":%s,"total_bits":%s}|}
          backend attack session
          (String.concat "," (List.map2 cls class_names classes))
          classes_ok bits
    | _ -> failwith "e20: unexpected row shape"
  in
  "[" ^ String.concat "," (List.map obj rows) ^ "]"

let min_classes_ok rows ~backend =
  List.fold_left
    (fun acc row ->
      match row with
      | b :: _ when b = backend -> (
          match List.rev row with
          | _ :: ok :: _ -> min acc (int_of_string ok)
          | _ -> acc)
      | _ -> acc)
    (List.length class_names)
    rows

let e20 () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E20 - social application (5 classes, repost fanout, sessions) \
            across backends: n=%d, %d users, %d rounds, period=%d, attack \
            frac=%.2f; class cells are goodput/p99/slo-frac"
           n users rounds period attack_frac)
      ~columns:
        ([ "backend"; "attack"; "session" ]
        @ class_names
        @ [ "classes-ok"; "total bits" ])
  in
  let rows, bench = sweep_rows ~sweep:"e20" cells run_cell in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "paired cells share the per-cell seed and full scenario spec; only \
     backend= differs, so all three configurations face draw-for-draw \
     identical schedules, session cycles, and adversary budgets";
  Stats.Table.note table
    "the adversary ranks the application's real hot keys (subreddit \
     publication counters); a class holds its SLO when >= 90% of issued \
     requests are served within its budget (classes-ok counts them)";
  Stats.Table.print table;
  set_extra "cells" (cells_json rows);
  set_extra "reconfig_min_classes_ok"
    (string_of_int (min_classes_ok rows ~backend:"reconfig"));
  set_extra "static_min_classes_ok"
    (string_of_int (min_classes_ok rows ~backend:"static"));
  set_extra "chord_min_classes_ok"
    (string_of_int (min_classes_ok rows ~backend:"chord"));
  bench
