(* Experiment E13: message-level validation of the Section 5 group
   machinery (Lemmas 14/15).

   Dos_network (used by E8-E10) advances one canonical state per group; this
   experiment replays the same protocol with Group_sim, where every
   representative physically broadcasts proposals and states and blocked
   nodes really miss messages.  It verifies (a) the simulated primitive
   still samples uniformly, (b) availability failures are exactly the
   starvation events the canonical model predicts, and (c) the real
   communication work per node stays polylogarithmic even with the group
   broadcast overhead — the claim behind Theorem 6's work bound. *)

open Exp_util

let scenario ~label ~n ~cube ~blocked_for_round =
  let supernodes = Topology.Hypercube.node_count cube in
  let s = rng_for ("e13" ^ label) n in
  let group_of = Array.init n (fun _ -> Prng.Stream.int s supernodes) in
  let proto = Core.Supernode_sampling.protocol ~c:2.0 ~cube () in
  let gs = Core.Group_sim.create ~rng:(Prng.Stream.split s) ~n ~group_of proto in
  Core.Group_sim.run_all gs ~blocked_for_round:(blocked_for_round s group_of);
  let lost = List.length (Core.Group_sim.lost_groups gs) in
  let counts = Array.make supernodes 0 in
  let underflows = ref 0 in
  for x = 0 to supernodes - 1 do
    match Core.Group_sim.state_of gs x with
    | None -> ()
    | Some st ->
        underflows := !underflows + Core.Supernode_sampling.underflows st;
        Array.iter
          (fun v -> counts.(v) <- counts.(v) + 1)
          (Core.Supernode_sampling.samples st)
  done;
  let p =
    if lost = supernodes then 0.0 else Stats.Chi_square.test_uniform counts
  in
  let m = Core.Group_sim.metrics gs in
  ( Core.Group_sim.network_rounds_total gs,
    lost,
    supernodes,
    !underflows,
    p,
    Simnet.Metrics.max_node_bits_ever m,
    Simnet.Metrics.total_msgs m,
    Bench.of_metrics m )

let e13 () =
  let table =
    Stats.Table.create
      ~title:
        "E13 (Lemmas 14/15) - message-level group simulation of the \
         supernode sampling primitive"
      ~columns:
        [
          "n"; "scenario"; "net rounds"; "lost groups"; "underflows";
          "chi2 p (samples)"; "max work (bits/round)"; "messages";
        ]
  in
  (* n x scenario grid through the sweep engine: n rides on the cell
     scenario (validated like the CLI's -n), the disruption label is a
     free axis the cell function interprets *)
  let cells =
    grid ~sweep:"e13"
      [
        Sweep.Grid.scenario_key "n" [ "1024"; "4096" ];
        Sweep.Grid.strings "scenario"
          [ "clean"; "random 25%"; "kill one group" ];
      ]
  in
  let rows, bench13 =
    sweep_rows ~sweep:"e13" cells (fun cell ->
        let n = Sweep.Grid.int_binding cell "n" in
        let label = Sweep.Grid.binding cell "scenario" in
        let d = Core.Params.dos_dimension ~c:2.0 ~n in
        let cube = Topology.Hypercube.create d in
        let blocked s group_of ~round =
          match label with
          | "clean" -> Array.make n false
          | "random 25%" ->
              let b = Array.make n false in
              Array.iter
                (fun v -> b.(v) <- true)
                (Prng.Stream.sample_distinct s n ~k:(n / 4));
              b
          | _ ->
              let b = Array.make n false in
              if round < 3 then
                Array.iteri (fun v g -> if g = 0 then b.(v) <- true) group_of;
              b
        in
        let rounds, lost, supernodes, underflows, p, work, msgs, b =
          scenario ~label ~n ~cube ~blocked_for_round:blocked
        in
        ( [
            int_c n;
            label;
            int_c rounds;
            Printf.sprintf "%d/%d" lost supernodes;
            int_c underflows;
            flt ~decimals:3 p;
            int_c work;
            int_c msgs;
          ],
          b ))
  in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "paper: if every group keeps an available node each round, the groups \
     simulate the primitive correctly (Lemma 14) and can rebuild themselves \
     (Lemma 15); killing a whole group for one simulation step loses \
     exactly that supernode's state; work stays polylog despite every \
     member broadcasting every proposal";
  Stats.Table.print table;
  (* E13b: the Theorem 6 lateness crossover re-run with the message-level
     backend - the whole network, every proposal and response a real
     blocked-able message. *)
  let n = 1024 in
  let table_b =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E13b (Theorem 6, message level) - survival vs lateness with the \
            Group_sim execution backend, n=%d, 25%% blocked/round" n)
      ~columns:
        [ "adversary"; "lateness"; "rounds"; "starved"; "windows ok"; "verdict" ]
  in
  let probe =
    Core.Dos_network.create ~c:2.0 ~rng:(rng_for "e13bp" 0) ~n ()
  in
  let p = Core.Dos_network.period probe in
  (* four hand-picked (strategy, lateness) pairs, not a product: a
     single free axis whose labels the cell function decodes *)
  let cases =
    [
      ("random-0", (Core.Dos_adversary.Random_blocking, 0));
      ("group-kill-0", (Core.Dos_adversary.Group_kill, 0));
      ("group-kill-period", (Core.Dos_adversary.Group_kill, p));
      ("group-kill-2period", (Core.Dos_adversary.Group_kill, 2 * p));
    ]
  in
  let cells_b =
    grid ~sweep:"e13b" [ Sweep.Grid.strings "case" (List.map fst cases) ]
  in
  let rows_b, bench_b =
    sweep_rows ~sweep:"e13b" cells_b (fun cell ->
        let strategy, lateness =
          List.assoc (Sweep.Grid.binding cell "case") cases
        in
        let s =
          rng_for
            (Printf.sprintf "e13b-%s-%d"
               (Core.Dos_adversary.to_string strategy)
               lateness)
            n
        in
        let net =
          Core.Dos_network.create ~c:2.0 ~backend:Core.Dos_network.Message_level
            ~rng:(Prng.Stream.split s) ~n ()
        in
        let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
        let adv =
          Core.Dos_adversary.create strategy ~rng:(Prng.Stream.split s) ~lateness
            ~frac:0.25
        in
        let rounds = 5 * p in
        let starved = ref 0 in
        for _ = 1 to rounds do
          Core.Dos_adversary.observe adv
            ~group_of:(Core.Dos_network.group_of net);
          let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
          let r = Core.Dos_network.run_round net ~blocked in
          if r.Core.Dos_network.starved_groups > 0 then incr starved
        done;
        let ok =
          match Core.Dos_network.last_window net with
          | Some w -> if w.Core.Dos_network.reconfigured then 1 else 0
          | None -> 0
        in
        ( [
            Core.Dos_adversary.to_string strategy;
            int_c lateness;
            int_c rounds;
            int_c !starved;
            Printf.sprintf "last window %s" (if ok = 1 then "ok" else "FAILED");
            (if !starved = 0 then "survives" else "KILLED");
          ],
          Bench.rounds rounds ))
  in
  List.iter (Stats.Table.add_row table_b) rows_b;
  Stats.Table.note table_b
    "same crossover as E9, with zero modelling shortcuts: the adversary's \
     blocked sets hit the actual protocol messages";
  Stats.Table.print table_b;
  Bench.add bench13 bench_b
