(* Tests for the rapid node sampling primitives (Section 3) and their plain
   random-walk baselines: parameter derivations, schedules, round counts,
   statistical uniformity, and the exponential round-count separation that
   is the paper's headline claim. *)

let rng () = Testutil.rng ()

(* ---------- Params ---------- *)

let test_log2i_ceil () =
  Alcotest.(check int) "1" 0 (Core.Params.log2i_ceil 1);
  Alcotest.(check int) "2" 1 (Core.Params.log2i_ceil 2);
  Alcotest.(check int) "3" 2 (Core.Params.log2i_ceil 3);
  Alcotest.(check int) "1024" 10 (Core.Params.log2i_ceil 1024);
  Alcotest.(check int) "1025" 11 (Core.Params.log2i_ceil 1025)

let test_walk_length () =
  (* d = 8: base 2, so ceil(2 alpha log2 n) *)
  Alcotest.(check int) "alpha 1, n 1024" 20
    (Core.Params.walk_length ~alpha:1.0 ~d:8 ~n:1024);
  Alcotest.(check int) "alpha 3, n 1024" 60
    (Core.Params.walk_length ~alpha:3.0 ~d:8 ~n:1024);
  Alcotest.check_raises "small d rejected"
    (Invalid_argument "Params.walk_length: d < 5") (fun () ->
      ignore (Core.Params.walk_length ~alpha:1.0 ~d:4 ~n:16))

let test_iterations_grow_loglog () =
  (* T = ceil(log2 walk_length) grows by O(1) when n squares. *)
  let t1 = Core.Params.iterations_hgraph ~alpha:1.0 ~d:8 ~n:1024 in
  let t2 = Core.Params.iterations_hgraph ~alpha:1.0 ~d:8 ~n:(1024 * 1024) in
  Alcotest.(check int) "T(2^10)" 5 t1;
  Alcotest.(check int) "T(2^20) = T + 1" 6 t2

let test_schedule_hgraph () =
  let s = Core.Params.schedule_hgraph ~eps:1.0 ~c:2.0 ~n:1024 ~t:3 in
  Alcotest.(check int) "length" 4 (Array.length s);
  Alcotest.(check int) "m_T = c log n" 20 s.(3);
  Alcotest.(check int) "m_0 = 27 c log n" 540 s.(0);
  (* schedule decreasing *)
  for i = 0 to 2 do
    Alcotest.(check bool) "decreasing" true (s.(i) > s.(i + 1))
  done

let test_schedule_hypercube () =
  let s = Core.Params.schedule_hypercube ~eps:1.0 ~c:2.0 ~n:1024 ~iters:3 in
  Alcotest.(check int) "m_0 = 8 c log n" 160 s.(0);
  Alcotest.(check int) "m_T" 20 s.(3)

let test_eps_guard () =
  Alcotest.check_raises "eps 0 rejected"
    (Invalid_argument "Params: eps must be in (0, 1]") (fun () ->
      ignore (Core.Params.schedule_hgraph ~eps:0.0 ~c:1.0 ~n:16 ~t:1))

let test_dos_dimension () =
  (* n = 4096, c = 1: n / log n = 341.3, largest 2^d <= 341 is 2^8 *)
  Alcotest.(check int) "4096 nodes" 8 (Core.Params.dos_dimension ~c:1.0 ~n:4096);
  Alcotest.(check int) "c = 2 halves it" 7
    (Core.Params.dos_dimension ~c:2.0 ~n:4096)

let test_loglog_estimate () =
  Alcotest.(check int) "2^16" 4 (Core.Params.loglog_estimate ~n:65536);
  Alcotest.(check int) "2^17" 5 (Core.Params.loglog_estimate ~n:(65536 * 2))

(* ---------- Multiset ---------- *)

let test_multiset_extract_all () =
  let m = Core.Multiset.of_array [| 5; 5; 7 |] in
  let r = rng () in
  let extracted = List.init 3 (fun _ ->
      Option.get (Core.Multiset.extract_random m r)) in
  Alcotest.(check (list int)) "multiset preserved" [ 5; 5; 7 ]
    (List.sort compare extracted);
  Alcotest.(check (option int)) "now empty" None
    (Core.Multiset.extract_random m r)

let test_multiset_peek_keeps () =
  let m = Core.Multiset.of_array [| 1; 2; 3 |] in
  ignore (Core.Multiset.peek_random m (rng ()));
  Alcotest.(check int) "peek does not remove" 3 (Core.Multiset.size m)

let test_multiset_extract_uniform () =
  let r = rng () in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let m = Core.Multiset.of_array [| 0; 1; 2; 3 |] in
    let v = Option.get (Core.Multiset.extract_random m r) in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "uniform extraction" true
    (Stats.Chi_square.test_uniform counts > 0.001)

(* ---------- Rapid sampling: H-graphs (Algorithm 1 / Theorem 2) ---------- *)

let test_hgraph_rounds_and_counts () =
  let g = Topology.Hgraph.random (rng ()) ~n:1024 ~d:8 in
  let r = Core.Rapid_hgraph.run ~eps:1.0 ~c:2.0 ~rng:(rng ()) g in
  let t = Core.Params.iterations_hgraph ~alpha:1.0 ~d:8 ~n:1024 in
  Alcotest.(check int) "2T rounds" (2 * t) r.Core.Sampling_result.rounds;
  Alcotest.(check int) "walk length 2^T" (1 lsl t)
    r.Core.Sampling_result.walk_length;
  Alcotest.(check bool) "walks long enough to mix" true
    (r.Core.Sampling_result.walk_length
    >= Core.Params.walk_length ~alpha:1.0 ~d:8 ~n:1024);
  (* every node gets samples (underflows only trim a few) *)
  Alcotest.(check bool) "many samples per node" true
    (Core.Sampling_result.samples_per_node r >= 15);
  Array.iter
    (Array.iter (fun s ->
         Alcotest.(check bool) "sample in range" true (s >= 0 && s < 1024)))
    r.Core.Sampling_result.samples

let test_hgraph_schedule_m_sizes () =
  (* Lemma 7's schedule: with no underflow, node v's multiset has exactly
     m_i elements after iteration i; at the end that is m_T. *)
  let g = Topology.Hgraph.random (rng ()) ~n:512 ~d:8 in
  let r = Core.Rapid_hgraph.run ~eps:1.0 ~c:4.0 ~rng:(rng ()) g in
  if r.Core.Sampling_result.underflows = 0 then begin
    let m_t =
      r.Core.Sampling_result.schedule.(Array.length r.Core.Sampling_result.schedule - 1)
    in
    Array.iter
      (fun samples ->
        Alcotest.(check int) "final multiset size = m_T" m_t
          (Array.length samples))
      r.Core.Sampling_result.samples
  end

let test_hgraph_almost_uniform () =
  let g = Topology.Hgraph.random (rng ()) ~n:512 ~d:8 in
  let counts = Array.make 512 0 in
  (* aggregate over several runs for statistical power *)
  let seeds = [ 11L; 22L; 33L; 44L ] in
  List.iter
    (fun seed ->
      let r =
        Core.Rapid_hgraph.run ~alpha:2.0 ~rng:(Prng.Stream.of_seed seed) g
      in
      Array.iter
        (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
        r.Core.Sampling_result.samples)
    seeds;
  Alcotest.(check bool) "chi-square does not reject uniformity" true
    (Stats.Chi_square.test_uniform counts > 0.001);
  let tv = Stats.Distance.tv_counts_uniform counts in
  let floor =
    Stats.Distance.expected_tv_noise_floor
      ~samples:(Array.fold_left ( + ) 0 counts)
      ~cells:512
  in
  Alcotest.(check bool)
    (Printf.sprintf "TV %.4f near noise floor %.4f" tv floor)
    true (tv < 1.5 *. floor)

let test_hgraph_work_polylog () =
  (* Theorem 2's communication bound: per-node per-round work is
     O(log^(2+log(2+eps)) n) bits — far below n. *)
  let n = 2048 in
  let g = Topology.Hgraph.random (rng ()) ~n ~d:8 in
  let r = Core.Rapid_hgraph.run ~eps:0.5 ~c:2.0 ~rng:(rng ()) g in
  let logn = 11.0 in
  let bound =
    (* generous constant x log^(2+log2(2.5)) n x id_bits *)
    20.0 *. (logn ** (2.0 +. (Float.log 2.5 /. Float.log 2.0))) *. 12.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "max work %d under %.0f" r.Core.Sampling_result.max_round_node_bits bound)
    true
    (float_of_int r.Core.Sampling_result.max_round_node_bits < bound)

let test_hgraph_underflow_rate_low () =
  (* Lemma 7: with a safe constant, the algorithm succeeds w.h.p. *)
  let failures = ref 0 in
  for seed = 1 to 10 do
    let s = Prng.Stream.of_seed (Int64.of_int seed) in
    let g = Topology.Hgraph.random (Prng.Stream.split s) ~n:512 ~d:8 in
    let r = Core.Rapid_hgraph.run ~eps:1.0 ~c:6.0 ~rng:(Prng.Stream.split s) g in
    if r.Core.Sampling_result.underflows > 0 then incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "failures %d <= 2 of 10" !failures)
    true (!failures <= 2)

let test_hgraph_plain_baseline () =
  let g = Topology.Hgraph.random (rng ()) ~n:1024 ~d:8 in
  let p = Core.Rapid_hgraph.run_plain ~alpha:1.0 ~k:5 ~rng:(rng ()) g in
  Alcotest.(check int) "walk length + report round" 21 p.Core.Sampling_result.rounds;
  Alcotest.(check int) "k samples per node" 5
    (Core.Sampling_result.samples_per_node p);
  Alcotest.(check int) "no underflows in plain walks" 0
    p.Core.Sampling_result.underflows

let test_exponential_separation_hgraph () =
  (* The paper's headline: rapid sampling needs exponentially fewer rounds
     than plain walks, and the gap widens with n. *)
  List.iter
    (fun n ->
      let g = Topology.Hgraph.random (rng ()) ~n ~d:8 in
      let fast = Core.Rapid_hgraph.run ~rng:(rng ()) g in
      let slow = Core.Rapid_hgraph.run_plain ~k:2 ~rng:(rng ()) g in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: %d rounds << %d rounds" n
           fast.Core.Sampling_result.rounds slow.Core.Sampling_result.rounds)
        true
        (2 * fast.Core.Sampling_result.rounds < slow.Core.Sampling_result.rounds))
    [ 256; 1024; 4096 ]

let test_engine_matches_direct () =
  (* Differential check: the message-level engine execution and the direct
     array implementation must agree on rounds, schedules, per-node sample
     counts (absent underflow) and distribution. *)
  let g = Topology.Hgraph.random (rng ()) ~n:512 ~d:8 in
  let direct = Core.Rapid_hgraph.run ~eps:1.0 ~c:4.0 ~rng:(rng ()) g in
  let engine = Core.Rapid_hgraph.run_on_engine ~eps:1.0 ~c:4.0 ~rng:(rng ()) g in
  Alcotest.(check int) "same rounds" direct.Core.Sampling_result.rounds
    engine.Core.Sampling_result.rounds;
  Alcotest.(check (array int)) "same schedule" direct.Core.Sampling_result.schedule
    engine.Core.Sampling_result.schedule;
  Alcotest.(check int) "same walk length" direct.Core.Sampling_result.walk_length
    engine.Core.Sampling_result.walk_length;
  if
    direct.Core.Sampling_result.underflows = 0
    && engine.Core.Sampling_result.underflows = 0
  then
    Alcotest.(check int) "same samples per node"
      (Core.Sampling_result.samples_per_node direct)
      (Core.Sampling_result.samples_per_node engine);
  (* bit totals agree up to rng-driven routing differences *)
  let ratio =
    float_of_int engine.Core.Sampling_result.total_bits
    /. float_of_int direct.Core.Sampling_result.total_bits
  in
  Alcotest.(check bool)
    (Printf.sprintf "total bits within 2%% (ratio %.4f)" ratio)
    true
    (ratio > 0.98 && ratio < 1.02);
  let counts = Array.make 512 0 in
  Array.iter
    (Array.iter (fun v -> counts.(v) <- counts.(v) + 1))
    engine.Core.Sampling_result.samples;
  Alcotest.(check bool) "engine samples uniform" true
    (Stats.Chi_square.test_uniform counts > 0.001)

(* ---------- Rapid sampling: hypercube (Algorithm 2 / Theorem 3) ---------- *)

let test_hypercube_rounds () =
  let cube = Topology.Hypercube.create 8 in
  let r = Core.Rapid_hypercube.run ~rng:(rng ()) cube in
  Alcotest.(check int) "2 ceil(log2 d) rounds" 6 r.Core.Sampling_result.rounds;
  Alcotest.(check int) "walk length d" 8 r.Core.Sampling_result.walk_length

let test_hypercube_uniform () =
  let cube = Topology.Hypercube.create 9 in
  let counts = Array.make 512 0 in
  List.iter
    (fun seed ->
      let r = Core.Rapid_hypercube.run ~rng:(Prng.Stream.of_seed seed) cube in
      Array.iter
        (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
        r.Core.Sampling_result.samples)
    [ 5L; 6L; 7L ];
  Alcotest.(check bool) "exactly uniform (chi-square)" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_hypercube_non_power_of_two_dim () =
  (* d = 10 is not a power of two: the left-leaning segment tree must still
     randomize all coordinates. *)
  let cube = Topology.Hypercube.create 10 in
  let r = Core.Rapid_hypercube.run ~c:3.0 ~rng:(rng ()) cube in
  Alcotest.(check int) "2 ceil(log2 10) = 8 rounds" 8 r.Core.Sampling_result.rounds;
  let counts = Array.make 1024 0 in
  Array.iter
    (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
    r.Core.Sampling_result.samples;
  Alcotest.(check bool) "uniform for general d" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_hypercube_within_node_independence () =
  (* The regression found during development: per-node pools must behave as
     independent samples, so scattering group members via pool prefixes
     must give binomial-like occupancy (not server-clumped). *)
  let cube = Topology.Hypercube.create 8 in
  let n = 256 in
  let r = Core.Rapid_hypercube.run ~c:4.0 ~rng:(rng ()) cube in
  let newsz = Array.make n 0 in
  Array.iter
    (fun pool ->
      for i = 0 to min 15 (Array.length pool - 1) do
        newsz.(pool.(i)) <- newsz.(pool.(i)) + 1
      done)
    r.Core.Sampling_result.samples;
  let mean =
    float_of_int (Array.fold_left ( + ) 0 newsz) /. float_of_int n
  in
  let var =
    Array.fold_left (fun a c -> a +. ((float_of_int c -. mean) ** 2.0)) 0.0 newsz
    /. float_of_int n
  in
  Alcotest.(check bool)
    (Printf.sprintf "variance %.1f within 2x of Poisson mean %.1f" var mean)
    true
    (var < 2.0 *. mean)

let test_hypercube_plain_baseline () =
  let cube = Topology.Hypercube.create 7 in
  let p = Core.Rapid_hypercube.run_plain ~k:10 ~rng:(rng ()) cube in
  Alcotest.(check int) "d + 1 rounds" 8 p.Core.Sampling_result.rounds;
  let counts = Array.make 128 0 in
  Array.iter
    (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
    p.Core.Sampling_result.samples;
  Alcotest.(check bool) "token walk uniform" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_exponential_separation_hypercube () =
  List.iter
    (fun d ->
      let cube = Topology.Hypercube.create d in
      let fast = Core.Rapid_hypercube.run ~rng:(rng ()) cube in
      let slow = Core.Rapid_hypercube.run_plain ~k:2 ~rng:(rng ()) cube in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d: %d << %d rounds" d fast.Core.Sampling_result.rounds
           slow.Core.Sampling_result.rounds)
        true
        (fast.Core.Sampling_result.rounds < slow.Core.Sampling_result.rounds))
    [ 8; 10; 12 ]

(* ---------- properties ---------- *)

let qcheck_schedule_monotone =
  QCheck.Test.make ~name:"m_i schedules strictly decrease" ~count:100
    QCheck.(triple (float_range 0.1 1.0) (float_range 1.0 8.0) (int_range 16 100_000))
    (fun (eps, c, n) ->
      let s = Core.Params.schedule_hgraph ~eps ~c ~n ~t:5 in
      let ok = ref true in
      for i = 0 to Array.length s - 2 do
        if s.(i) < s.(i + 1) then ok := false
      done;
      !ok && s.(5) >= 1)

let qcheck_samples_in_range =
  QCheck.Test.make ~name:"all rapid H-graph samples are valid node ids"
    ~count:10
    QCheck.(pair int64 (int_range 64 512))
    (fun (seed, n) ->
      let s = Prng.Stream.of_seed seed in
      let g = Topology.Hgraph.random (Prng.Stream.split s) ~n ~d:8 in
      let r = Core.Rapid_hgraph.run ~c:1.0 ~rng:(Prng.Stream.split s) g in
      Array.for_all
        (Array.for_all (fun v -> v >= 0 && v < n))
        r.Core.Sampling_result.samples)

(* ---------- retry / escalation (fault-model extension) ---------- *)

let test_retry_threshold_recovery () =
  (* E4's threshold: at c = 1.0 the schedule is under-provisioned and a
     single attempt underflows.  The escalating retry policy must end with
     zero underflows where the fixed policy failed. *)
  let n = 512 in
  let seed = 11L in
  let fixed =
    let s = Prng.Stream.of_seed seed in
    let g = Topology.Hgraph.random (Prng.Stream.split s) ~n ~d:8 in
    Core.Rapid_hgraph.run ~c:1.0 ~rng:(Prng.Stream.split s) g
  in
  Alcotest.(check bool) "fixed c = 1.0 underflows" true
    (fixed.Core.Sampling_result.underflows > 0);
  let retried =
    let s = Prng.Stream.of_seed seed in
    let g = Topology.Hgraph.random (Prng.Stream.split s) ~n ~d:8 in
    Core.Rapid_hgraph.run ~c:1.0
      ~retry:(Core.Retry.make ~max_retries:6 ~factor:2.0 ())
      ~rng:(Prng.Stream.split s) g
  in
  Alcotest.(check int) "escalation ends with zero underflows" 0
    retried.Core.Sampling_result.underflows;
  Alcotest.(check bool) "retries were needed and recorded" true
    (retried.Core.Sampling_result.retries > 0
    && retried.Core.Sampling_result.escalations > 0)

let test_retry_fixed_is_identity () =
  (* The zero-retry policy must reproduce the legacy driver byte for byte:
     same samples, same counters. *)
  let s = Testutil.rng () in
  let g = Topology.Hgraph.random (Prng.Stream.split s) ~n:256 ~d:8 in
  let s1 = Prng.Stream.of_seed 5L and s2 = Prng.Stream.of_seed 5L in
  let legacy = Core.Rapid_hgraph.run ~c:2.0 ~rng:s1 g in
  let explicit = Core.Rapid_hgraph.run ~c:2.0 ~retry:Core.Retry.fixed ~rng:s2 g in
  Alcotest.(check bool) "identical samples" true
    (legacy.Core.Sampling_result.samples
    = explicit.Core.Sampling_result.samples);
  Alcotest.(check int) "no retries" 0 explicit.Core.Sampling_result.retries;
  Alcotest.(check int) "no escalations" 0
    explicit.Core.Sampling_result.escalations

let test_retry_policy_validation () =
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Retry.make: max_retries < 0") (fun () ->
      ignore (Core.Retry.make ~max_retries:(-1) ()));
  let p = Core.Retry.make ~max_retries:2 ~factor:2.0 ~c_cap:6.0 () in
  Alcotest.(check (float 1e-9)) "escalation doubles" 4.0
    (Core.Retry.escalate p ~c:2.0 ~attempt:1);
  Alcotest.(check (float 1e-9)) "cap binds" 6.0
    (Core.Retry.escalate p ~c:2.0 ~attempt:5);
  Alcotest.(check bool) "fixed disabled" false (Core.Retry.enabled Core.Retry.fixed)

let () =
  Alcotest.run "core-sampling"
    [
      ( "params",
        [
          Alcotest.test_case "log2i_ceil" `Quick test_log2i_ceil;
          Alcotest.test_case "walk length" `Quick test_walk_length;
          Alcotest.test_case "iterations loglog" `Quick
            test_iterations_grow_loglog;
          Alcotest.test_case "hgraph schedule" `Quick test_schedule_hgraph;
          Alcotest.test_case "hypercube schedule" `Quick test_schedule_hypercube;
          Alcotest.test_case "eps guard" `Quick test_eps_guard;
          Alcotest.test_case "dos dimension" `Quick test_dos_dimension;
          Alcotest.test_case "loglog estimate" `Quick test_loglog_estimate;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "extract all" `Quick test_multiset_extract_all;
          Alcotest.test_case "peek keeps" `Quick test_multiset_peek_keeps;
          Alcotest.test_case "uniform extraction" `Slow
            test_multiset_extract_uniform;
        ] );
      ( "rapid-hgraph",
        [
          Alcotest.test_case "rounds and counts" `Quick
            test_hgraph_rounds_and_counts;
          Alcotest.test_case "schedule sizes" `Quick test_hgraph_schedule_m_sizes;
          Alcotest.test_case "almost uniform" `Slow test_hgraph_almost_uniform;
          Alcotest.test_case "polylog work" `Quick test_hgraph_work_polylog;
          Alcotest.test_case "low underflow rate" `Slow
            test_hgraph_underflow_rate_low;
          Alcotest.test_case "plain baseline" `Quick test_hgraph_plain_baseline;
          Alcotest.test_case "exponential separation" `Slow
            test_exponential_separation_hgraph;
          Alcotest.test_case "engine matches direct" `Quick
            test_engine_matches_direct;
        ] );
      ( "rapid-hypercube",
        [
          Alcotest.test_case "rounds" `Quick test_hypercube_rounds;
          Alcotest.test_case "uniform" `Slow test_hypercube_uniform;
          Alcotest.test_case "general d" `Slow test_hypercube_non_power_of_two_dim;
          Alcotest.test_case "pool independence" `Quick
            test_hypercube_within_node_independence;
          Alcotest.test_case "plain baseline" `Quick test_hypercube_plain_baseline;
          Alcotest.test_case "exponential separation" `Slow
            test_exponential_separation_hypercube;
        ] );
      ( "retry",
        [
          Alcotest.test_case "threshold recovery" `Quick
            test_retry_threshold_recovery;
          Alcotest.test_case "fixed policy is identity" `Quick
            test_retry_fixed_is_identity;
          Alcotest.test_case "policy validation" `Quick
            test_retry_policy_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_schedule_monotone; qcheck_samples_in_range ] );
    ]
