(* Tests for the declarative sweep engine (lib/sweep): grid expansion,
   cell seeding, checkpoint/resume, and the artifact-identity guarantees
   the bench harness leans on. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let temp_path tag =
  let path = Filename.temp_file ("sweep_" ^ tag) ".jsonl" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

(* ---------- grid expansion ---------- *)

let expand_ok ~sweep axes =
  match Sweep.Grid.expand ~sweep axes with
  | Ok cells -> cells
  | Error e -> Alcotest.failf "expand: %s" e

let test_expand_order_and_ids () =
  let cells =
    expand_ok ~sweep:"g"
      [ Sweep.Grid.strings "a" [ "x"; "y" ]; Sweep.Grid.ints "b" [ 1; 2; 3 ] ]
  in
  Alcotest.(check int) "6 cells" 6 (List.length cells);
  (* first axis slowest: a=x covers indices 0..2 *)
  Alcotest.(check (list string))
    "row-major ids"
    [
      "a=x;b=1"; "a=x;b=2"; "a=x;b=3"; "a=y;b=1"; "a=y;b=2"; "a=y;b=3";
    ]
    (List.map (fun c -> c.Sweep.Grid.id) cells);
  List.iteri
    (fun i c -> Alcotest.(check int) "index" i c.Sweep.Grid.index)
    cells

let test_expand_empty_grid () =
  match expand_ok ~sweep:"g" [] with
  | [ c ] ->
      Alcotest.(check string) "default id" "default" c.Sweep.Grid.id;
      Alcotest.(check int) "index 0" 0 c.Sweep.Grid.index
  | cells -> Alcotest.failf "expected 1 cell, got %d" (List.length cells)

let test_expand_rejects_collisions () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool)
    "duplicate axis name" true
    (is_error
       (Sweep.Grid.expand ~sweep:"g"
          [ Sweep.Grid.ints "a" [ 1 ]; Sweep.Grid.strings "a" [ "x" ] ]));
  Alcotest.(check bool)
    "empty axis" true
    (is_error (Sweep.Grid.expand ~sweep:"g" [ Sweep.Grid.ints "a" [] ]));
  Alcotest.(check bool)
    "repeated value" true
    (is_error (Sweep.Grid.expand ~sweep:"g" [ Sweep.Grid.ints "a" [ 2; 2 ] ]));
  Alcotest.(check bool)
    "bad scenario value" true
    (is_error
       (Sweep.Grid.expand ~sweep:"g" [ Sweep.Grid.scenario_key "n" [ "-3" ] ]))

let test_scenario_axis_applies () =
  let cells =
    expand_ok ~sweep:"g" [ Sweep.Grid.scenario_key "n" [ "64"; "128" ] ]
  in
  Alcotest.(check (list int))
    "scenario carries n" [ 64; 128 ]
    (List.map (fun c -> c.Sweep.Grid.scenario.Simnet.Scenario.n) cells);
  Alcotest.(check (list int))
    "int_binding reads it back" [ 64; 128 ]
    (List.map (fun c -> Sweep.Grid.int_binding c "n") cells)

let test_seed_depends_only_on_name_and_id () =
  let seed = Sweep.Grid.seed_of ~sweep:"s" "a=1" in
  Alcotest.(check bool) "stable" true (seed = Sweep.Grid.seed_of ~sweep:"s" "a=1");
  Alcotest.(check bool)
    "sweep name matters" true
    (seed <> Sweep.Grid.seed_of ~sweep:"t" "a=1");
  Alcotest.(check bool)
    "cell id matters" true
    (seed <> Sweep.Grid.seed_of ~sweep:"s" "a=2");
  (* the same cell produced by a bigger grid keeps its seed *)
  let small = expand_ok ~sweep:"s" [ Sweep.Grid.ints "a" [ 1 ] ] in
  let big = expand_ok ~sweep:"s" [ Sweep.Grid.ints "a" [ 1; 2; 3 ] ] in
  let seed_in cells =
    (List.find (fun c -> c.Sweep.Grid.id = "a=1") cells).Sweep.Grid.seed
  in
  Alcotest.(check bool)
    "independent of grid shape" true
    (seed_in small = seed_in big)

(* ---------- execution: a deterministic cell function ---------- *)

let demo_cells () =
  expand_ok ~sweep:"demo"
    [
      Sweep.Grid.scenario_key "n" [ "32"; "64" ];
      Sweep.Grid.floats "c" [ 1.5; 2.0 ];
    ]

let demo_calls = Atomic.make 0

let demo_fn ~trace cell =
  Atomic.incr demo_calls;
  let rng = Sweep.Grid.cell_rng cell in
  Simnet.Trace.emit trace
    (Simnet.Trace.Note
       { name = "cell"; fields = [ ("id", Simnet.Trace.String cell.Sweep.Grid.id) ] });
  [
    ("draw", Simnet.Trace.Int (Prng.Stream.int rng 1_000_000));
    ("c", Simnet.Trace.Float (Sweep.Grid.float_binding cell "c"));
    ("tag", Simnet.Trace.String cell.Sweep.Grid.id);
  ]

let run_demo ?domains ?checkpoint ?trace ?cell_traces () =
  Sweep.Exec.run ?domains ?checkpoint ?trace ?cell_traces ~sweep:"demo"
    ~codec:Sweep.Exec.record_codec (demo_cells ()) demo_fn

let test_outcomes_in_cell_order () =
  let outs = run_demo ~domains:4 () in
  Alcotest.(check (list string))
    "cell order preserved"
    (List.map (fun c -> c.Sweep.Grid.id) (demo_cells ()))
    (List.map (fun (o : _ Sweep.Exec.outcome) -> o.cell.Sweep.Grid.id) outs);
  Alcotest.(check bool)
    "nothing cached without a checkpoint" true
    (List.for_all (fun (o : _ Sweep.Exec.outcome) -> not o.cached) outs)

let test_domain_count_invariance () =
  let a = temp_path "dom1" and b = temp_path "dom4" in
  Fun.protect
    ~finally:(fun () -> cleanup a; cleanup b)
    (fun () ->
      let o1 = run_demo ~domains:1 ~checkpoint:a () in
      let o4 = run_demo ~domains:4 ~checkpoint:b () in
      Alcotest.(check bool)
        "same values" true
        (List.map (fun (o : _ Sweep.Exec.outcome) -> o.value) o1
        = List.map (fun (o : _ Sweep.Exec.outcome) -> o.value) o4);
      Alcotest.(check string)
        "byte-identical artifacts" (read_file a) (read_file b))

let test_resume_equals_fresh () =
  let fresh = temp_path "fresh" and cut = temp_path "cut" in
  Fun.protect
    ~finally:(fun () -> cleanup fresh; cleanup cut)
    (fun () ->
      ignore (run_demo ~domains:2 ~checkpoint:fresh ());
      let artifact = read_file fresh in
      (* interrupt mid-sweep: keep two full records plus a torn final
         line, exactly what a killed process leaves behind *)
      let lines = String.split_on_char '\n' artifact in
      let keep = List.filteri (fun i _ -> i < 2) lines in
      let torn =
        String.concat "\n" keep ^ "\n{\"sweep\":\"demo\",\"cell\":\"trunc"
      in
      let oc = open_out_bin cut in
      output_string oc torn;
      close_out oc;
      Atomic.set demo_calls 0;
      let outs = run_demo ~domains:3 ~checkpoint:cut () in
      Alcotest.(check int)
        "only missing cells recomputed" 2 (Atomic.get demo_calls);
      Alcotest.(check int)
        "two cells served from the checkpoint" 2
        (List.length
           (List.filter (fun (o : _ Sweep.Exec.outcome) -> o.cached) outs));
      Alcotest.(check string)
        "resumed artifact byte-identical" artifact (read_file cut))

let test_foreign_sweep_records_ignored () =
  let path = temp_path "foreign" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc
        "{\"sweep\":\"other\",\"cell\":\"n=32;c=1.5\",\"index\":0,\"repro\":\"\",\"draw\":1}\n";
      close_out oc;
      Atomic.set demo_calls 0;
      ignore (run_demo ~domains:1 ~checkpoint:path ());
      Alcotest.(check int)
        "foreign records don't satisfy cells" 4 (Atomic.get demo_calls))

let test_reserved_payload_key_rejected () =
  match
    Sweep.Exec.run ~domains:1 ~sweep:"demo" ~codec:Sweep.Exec.record_codec
      (demo_cells ())
      (fun ~trace:_ _ -> [ ("cell", Simnet.Trace.Int 1) ])
  with
  | _ -> Alcotest.fail "expected Invalid_argument for reserved key"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "names the key: %s" msg)
        true
        (String.length msg > 0)

let test_progress_events () =
  let path = temp_path "trace" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let trace = Simnet.Trace.open_file path in
      ignore (run_demo ~domains:2 ~trace ());
      Simnet.Trace.close trace;
      let lines =
        String.split_on_char '\n' (String.trim (read_file path))
      in
      Alcotest.(check int) "one event per cell" 4 (List.length lines);
      let completed =
        List.filter_map
          (fun line ->
            match Simnet.Trace.parse_jsonl_line line with
            | Some pairs -> (
                Alcotest.(check bool)
                  "progress kind" true
                  (List.assoc_opt "ev" pairs
                  = Some (Simnet.Trace.String "progress"));
                match List.assoc_opt "completed" pairs with
                | Some (Simnet.Trace.Int c) -> Some c
                | _ -> None)
            | None -> Alcotest.failf "unparsable trace line: %s" line)
          lines
      in
      Alcotest.(check (list int))
        "completed counts 1..4" [ 1; 2; 3; 4 ]
        (List.sort compare completed))

let test_cell_traces () =
  let dir = Filename.temp_file "sweep_celltraces" "" in
  Sys.remove dir;
  let checkpoint = temp_path "celltrace_ckpt" in
  Fun.protect
    ~finally:(fun () ->
      cleanup checkpoint;
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let outs = run_demo ~domains:2 ~checkpoint ~cell_traces:dir () in
      (* every cell produced a binary trace at its deterministic path,
         holding exactly what demo_fn emitted *)
      List.iter
        (fun (o : _ Sweep.Exec.outcome) ->
          let path = Sweep.Exec.cell_trace_path ~dir o.cell in
          Alcotest.(check bool)
            (Printf.sprintf "%s exists" path)
            true (Sys.file_exists path);
          Alcotest.(check bool)
            "is a binary trace" true
            (Simnet.Trace.is_binary_file path);
          match Simnet.Trace.read_binary_file path with
          | [ Simnet.Trace.Note { name = "cell"; fields } ] ->
              Alcotest.(check bool)
                "note names the cell" true
                (fields
                = [ ("id", Simnet.Trace.String o.cell.Sweep.Grid.id) ])
          | evs ->
              Alcotest.failf "unexpected cell trace (%d events)"
                (List.length evs))
        outs;
      (* checkpoint records reference the trace under the reserved key *)
      String.split_on_char '\n' (String.trim (read_file checkpoint))
      |> List.iter (fun line ->
             match Simnet.Trace.parse_jsonl_line line with
             | Some pairs ->
                 Alcotest.(check bool)
                   "record carries a trace path" true
                   (match List.assoc_opt "trace" pairs with
                   | Some (Simnet.Trace.String p) ->
                       String.length p > 0
                       && Filename.check_suffix p ".bin"
                   | _ -> false)
             | None -> Alcotest.failf "unparsable checkpoint line: %s" line))

(* ---------- spec strings ---------- *)

let test_spec_parse () =
  let spec =
    "# demo sweep\nsweep=demo;run=churn\nn=64;seed=9\naxis:n=64|128\nvar:c=1.5|2"
  in
  match Sweep.Spec.parse spec with
  | Error e -> Alcotest.failf "spec parse: %s" e
  | Ok t -> (
      Alcotest.(check string) "name" "demo" t.Sweep.Spec.name;
      Alcotest.(check string) "runner" "churn" t.Sweep.Spec.run;
      Alcotest.(check int) "base seed" 9 t.Sweep.Spec.base.Simnet.Scenario.seed;
      match Sweep.Spec.cells t with
      | Error e -> Alcotest.failf "cells: %s" e
      | Ok cells ->
          Alcotest.(check (list string))
            "expanded ids"
            [ "n=64;c=1.5"; "n=64;c=2"; "n=128;c=1.5"; "n=128;c=2" ]
            (List.map (fun c -> c.Sweep.Grid.id) cells))

let test_spec_rejects_bad_base_key () =
  match Sweep.Spec.parse "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for unknown base key"

(* ---------- scenario round-trip (satellite of the sweep repro field) ---------- *)

let scenario_gen =
  let open QCheck.Gen in
  let opt_string choices = opt (oneofl choices) in
  let* n = int_range 1 100_000 in
  let* d = int_range 2 64 in
  let* seed = int_range 0 1_000_000 in
  let* sampler = opt_string [ "rapid"; "plain" ] in
  let* adversary = opt_string [ "random"; "group-kill" ] in
  let* frac = float_bound_inclusive 1.0 in
  let* lateness = int_range (-1) 64 in
  let* staleness =
    opt
      (oneof
         [
           map (fun n -> Simnet.Snapshots.Fixed n) (int_range 0 16);
           map (fun f -> Simnet.Snapshots.Mixed f) (float_range 0.0 8.0);
           map
             (fun (lo, d) -> Simnet.Snapshots.Uniform (lo, lo + d))
             (pair (int_range 0 8) (int_range 0 8));
         ])
  in
  let* corruption =
    opt
      (let* cls = oneofl Simnet.Corruption.all in
       let* severity = float_range 0.01 1.0 in
       let* cseed = map Int64.of_int (int_range 0 1_000_000) in
       return (Simnet.Corruption.make ~severity ~seed:cseed cls))
  in
  let* retry = int_range 0 9 in
  let* workload = opt_string [ "open:0.25"; "closed:4" ] in
  let* backend = opt_string [ "reconfig"; "chord" ] in
  let chord_knob = opt (int_range 1 32) in
  let* chord_fingers = chord_knob in
  let* chord_succs = chord_knob in
  let* chord_period = chord_knob in
  let* app = opt_string [ "social" ] in
  let* topics = opt (int_range 1 64) in
  let* fanout = opt (int_range 0 8) in
  let* session =
    opt (pair (float_range 0.05 1.0) (int_range 1 32))
  in
  let* rounds = int_range (-1) 99 in
  let* domains = int_range 0 8 in
  let* trace = opt_string [ "/tmp/t.jsonl" ] in
  let* trace_format =
    opt (oneofl [ Simnet.Trace.Jsonl; Simnet.Trace.Csv; Simnet.Trace.Binary ])
  in
  return
    {
      Simnet.Scenario.default with
      n;
      d;
      seed;
      sampler;
      adversary;
      frac;
      lateness;
      staleness;
      corruption;
      retry;
      workload;
      backend;
      chord_fingers;
      chord_succs;
      chord_period;
      app;
      topics;
      fanout;
      session;
      rounds;
      domains;
      trace;
      trace_format;
    }

let qcheck_scenario_roundtrip =
  QCheck.Test.make ~name:"Scenario.to_spec/parse round-trip" ~count:300
    (QCheck.make scenario_gen) (fun sc ->
      match Simnet.Scenario.parse (Simnet.Scenario.to_spec sc) with
      | Ok sc' -> sc' = sc
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_scenario_roundtrip_with_faults () =
  let spec = "n=256;faults=drop=0.05,crash=2;retry=3;frac=0.25" in
  match Simnet.Scenario.parse spec with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok sc -> (
      match Simnet.Scenario.parse (Simnet.Scenario.to_spec sc) with
      | Error e -> Alcotest.failf "re-parse: %s" e
      | Ok sc' ->
          Alcotest.(check bool) "fault plan survives" true (sc = sc'))

(* ---------- shard-merge aggregation ---------- *)

let test_bench_merge_order_independent () =
  let cells =
    List.init 7 (fun i ->
        {
          Sweep.Agg.rounds = i;
          total_bits = (i * 100) + 1;
          max_node_bits = 1000 - (i * 7);
        })
  in
  let total = Sweep.Agg.bench_sum cells in
  let rev = Sweep.Agg.bench_sum (List.rev cells) in
  Alcotest.(check bool) "sum order-independent" true (total = rev);
  Alcotest.(check int) "rounds" 21 total.Sweep.Agg.rounds;
  Alcotest.(check int) "max over cells" 1000 total.Sweep.Agg.max_node_bits;
  (* the pairs codec round-trips *)
  Alcotest.(check bool)
    "bench pairs round-trip" true
    (Sweep.Agg.bench_of_pairs (Sweep.Agg.bench_pairs total) = Some total)

let () =
  Alcotest.run "sweep"
    [
      ( "grid",
        [
          Alcotest.test_case "row-major order and ids" `Quick
            test_expand_order_and_ids;
          Alcotest.test_case "empty grid" `Quick test_expand_empty_grid;
          Alcotest.test_case "rejects collisions" `Quick
            test_expand_rejects_collisions;
          Alcotest.test_case "scenario axis applies" `Quick
            test_scenario_axis_applies;
          Alcotest.test_case "seed from (sweep, id) only" `Quick
            test_seed_depends_only_on_name_and_id;
        ] );
      ( "exec",
        [
          Alcotest.test_case "outcomes in cell order" `Quick
            test_outcomes_in_cell_order;
          Alcotest.test_case "domain-count invariance" `Quick
            test_domain_count_invariance;
          Alcotest.test_case "resume equals fresh" `Quick
            test_resume_equals_fresh;
          Alcotest.test_case "foreign sweep ignored" `Quick
            test_foreign_sweep_records_ignored;
          Alcotest.test_case "reserved key rejected" `Quick
            test_reserved_payload_key_rejected;
          Alcotest.test_case "progress events" `Quick test_progress_events;
          Alcotest.test_case "per-cell binary traces" `Quick test_cell_traces;
        ] );
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "rejects bad key" `Quick
            test_spec_rejects_bad_base_key;
        ] );
      ( "scenario",
        Alcotest.test_case "faults spec round-trips" `Quick
          test_scenario_roundtrip_with_faults
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_scenario_roundtrip ] );
      ( "agg",
        [
          Alcotest.test_case "bench merge order-independent" `Quick
            test_bench_merge_order_independent;
        ] );
    ]
