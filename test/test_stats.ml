(* Tests for the statistics toolkit. *)

let feq ?(tol = 1e-9) name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%g vs %g)" name a b)
    true
    (abs_float (a -. b) <= tol)

(* ---------- Moments ---------- *)

let test_moments_basic () =
  let m = Stats.Moments.create () in
  List.iter (Stats.Moments.add m) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Moments.count m);
  feq "mean" (Stats.Moments.mean m) 5.0;
  feq ~tol:1e-6 "variance" (Stats.Moments.variance m) (32.0 /. 7.0);
  feq "min" (Stats.Moments.min m) 2.0;
  feq "max" (Stats.Moments.max m) 9.0;
  feq "total" (Stats.Moments.total m) 40.0

let test_moments_empty () =
  let m = Stats.Moments.create () in
  feq "mean of empty" (Stats.Moments.mean m) 0.0;
  feq "variance of empty" (Stats.Moments.variance m) 0.0

let test_moments_merge () =
  let a = Stats.Moments.create () and b = Stats.Moments.create () in
  let whole = Stats.Moments.create () in
  let data = Array.init 1000 (fun i -> float_of_int (i * i) /. 77.0) in
  Array.iteri
    (fun i x ->
      Stats.Moments.add whole x;
      Stats.Moments.add (if i mod 3 = 0 then a else b) x)
    data;
  let merged = Stats.Moments.merge a b in
  Alcotest.(check int) "count" (Stats.Moments.count whole)
    (Stats.Moments.count merged);
  feq ~tol:1e-6 "mean" (Stats.Moments.mean whole) (Stats.Moments.mean merged);
  feq ~tol:1e-3 "variance" (Stats.Moments.variance whole)
    (Stats.Moments.variance merged)

(* ---------- Histogram ---------- *)

let test_histogram_basic () =
  let h = Stats.Histogram.create ~size:5 in
  List.iter (Stats.Histogram.add h) [ 0; 1; 1; 4; 4; 4 ];
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  Alcotest.(check int) "count 4" 3 (Stats.Histogram.count h 4);
  Alcotest.(check int) "max count" 3 (Stats.Histogram.max_count h);
  Alcotest.(check int) "nonzero cells" 3 (Stats.Histogram.nonzero_cells h);
  let f = Stats.Histogram.frequencies h in
  feq "freq of 1" f.(1) (2.0 /. 6.0)

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~size:100 in
  for v = 0 to 99 do
    Stats.Histogram.add h v
  done;
  Alcotest.(check int) "median" 49 (Stats.Histogram.percentile h 0.5);
  Alcotest.(check int) "p99" 98 (Stats.Histogram.percentile h 0.99);
  Alcotest.(check int) "p100" 99 (Stats.Histogram.percentile h 1.0)

let test_histogram_bounds () =
  let h = Stats.Histogram.create ~size:3 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Histogram.add: value out of range") (fun () ->
      Stats.Histogram.add h 3)

(* ---------- Distance ---------- *)

let test_tv_basics () =
  feq "identical" (Stats.Distance.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]) 0.0;
  feq "disjoint"
    (Stats.Distance.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |])
    1.0;
  feq "uniform distance"
    (Stats.Distance.tv_from_uniform [| 0.75; 0.25 |])
    0.25

let test_tv_counts () =
  feq "counts vs uniform" (Stats.Distance.tv_counts_uniform [| 3; 1 |]) 0.25;
  feq "all zero" (Stats.Distance.tv_counts_uniform [| 0; 0; 0 |]) 0.0

let test_l2 () =
  feq "l2" (Stats.Distance.l2 [| 0.0; 0.0 |] [| 3.0; 4.0 |]) 5.0

let test_kl () =
  feq "kl of identical" (Stats.Distance.kl_divergence [| 0.5; 0.5 |] [| 0.5; 0.5 |]) 0.0;
  Alcotest.(check bool) "kl infinite when unsupported" true
    (Stats.Distance.kl_divergence [| 1.0; 0.0 |] [| 0.0; 1.0 |] = infinity)

let test_noise_floor_monotone () =
  let f1 = Stats.Distance.expected_tv_noise_floor ~samples:1000 ~cells:100 in
  let f2 = Stats.Distance.expected_tv_noise_floor ~samples:100_000 ~cells:100 in
  Alcotest.(check bool) "more samples, lower floor" true (f2 < f1)

(* ---------- Chi-square ---------- *)

let test_gammp_known () =
  (* P(1, x) = 1 - e^{-x} *)
  feq ~tol:1e-9 "P(1,1)" (Stats.Chi_square.gammp ~a:1.0 ~x:1.0) (1.0 -. exp (-1.0));
  feq ~tol:1e-9 "P(1,5)" (Stats.Chi_square.gammp ~a:1.0 ~x:5.0) (1.0 -. exp (-5.0))

let test_chi2_cdf_known () =
  (* chi2 with 2 df: CDF(x) = 1 - e^{-x/2} *)
  feq ~tol:1e-9 "df=2 at 2" (Stats.Chi_square.cdf ~df:2 2.0) (1.0 -. exp (-1.0));
  (* median of chi2 with 1 df is ~0.4549 *)
  feq ~tol:1e-3 "df=1 median" (Stats.Chi_square.cdf ~df:1 0.4549) 0.5

let test_chi2_statistic () =
  feq "perfect fit" (Stats.Chi_square.statistic_uniform [| 10; 10; 10 |]) 0.0;
  feq "simple case" (Stats.Chi_square.statistic_uniform [| 12; 8 |]) 0.8

let test_chi2_uniform_accepts_uniform () =
  let rng = Prng.Stream.of_seed 3L in
  let counts = Array.make 20 0 in
  for _ = 1 to 100_000 do
    let v = Prng.Stream.int rng 20 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "p-value not tiny" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_chi2_uniform_rejects_biased () =
  let counts = Array.init 20 (fun i -> if i = 0 then 10_000 else 4_000) in
  Alcotest.(check bool) "biased rejected" true
    (Stats.Chi_square.test_uniform counts < 1e-6)

(* ---------- Entropy ---------- *)

let test_entropy () =
  feq "fair coin" (Stats.Entropy.of_probabilities [| 0.5; 0.5 |]) 1.0;
  feq "certain" (Stats.Entropy.of_probabilities [| 1.0; 0.0 |]) 0.0;
  feq "uniform counts" (Stats.Entropy.of_counts [| 5; 5; 5; 5 |]) 2.0;
  feq "max entropy" (Stats.Entropy.max_entropy 8) 3.0;
  feq "normalized uniform" (Stats.Entropy.normalized_of_counts [| 7; 7 |]) 1.0;
  Alcotest.(check bool) "normalized skewed < 1" true
    (Stats.Entropy.normalized_of_counts [| 100; 1 |] < 0.5)

(* ---------- Fit ---------- *)

let test_fit_linear_exact () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0)) in
  let l = Stats.Fit.linear pts in
  feq ~tol:1e-9 "slope" l.Stats.Fit.slope 3.0;
  feq ~tol:1e-9 "intercept" l.Stats.Fit.intercept 1.0;
  feq ~tol:1e-9 "r2" l.Stats.Fit.r2 1.0

let test_fit_classify () =
  let log2 x = Float.log x /. Float.log 2.0 in
  let ns = Array.init 10 (fun i -> float_of_int (1 lsl (i + 4))) in
  let log_series = Array.map (fun n -> (n, 2.0 *. log2 n)) ns in
  let loglog_series = Array.map (fun n -> (n, 3.0 *. log2 (log2 n))) ns in
  let const_series = Array.map (fun n -> (n, 5.0)) ns in
  Alcotest.(check string) "log growth" "O(log n)"
    (Stats.Fit.growth_to_string (Stats.Fit.classify_growth log_series));
  Alcotest.(check string) "loglog growth" "O(log log n)"
    (Stats.Fit.growth_to_string (Stats.Fit.classify_growth loglog_series));
  Alcotest.(check string) "constant" "O(1)"
    (Stats.Fit.growth_to_string (Stats.Fit.classify_growth const_series))

(* ---------- Summary & Table ---------- *)

let test_summary () =
  let s = Stats.Summary.create () in
  Stats.Summary.observe s "x" 1.0;
  Stats.Summary.observe s "x" 3.0;
  Stats.Summary.observe_int s "y" 7;
  feq "mean x" (Stats.Summary.mean s "x") 2.0;
  feq "max y" (Stats.Summary.max s "y") 7.0;
  Alcotest.(check (list string)) "names" [ "x"; "y" ] (Stats.Summary.names s);
  Alcotest.(check bool) "missing metric" true (Stats.Summary.get s "z" = None)

let test_summary_unknown_name_raises () =
  (* mean/max on a never-observed metric used to fabricate 0.0 /
     neg_infinity; they must raise instead of inventing data. *)
  let s = Stats.Summary.create () in
  Stats.Summary.observe s "x" 1.0;
  Alcotest.check_raises "mean of unknown" Not_found (fun () ->
      ignore (Stats.Summary.mean s "nope"));
  Alcotest.check_raises "max of unknown" Not_found (fun () ->
      ignore (Stats.Summary.max s "nope"));
  Alcotest.(check (option (float 1e-9))) "mean_opt known" (Some 1.0)
    (Stats.Summary.mean_opt s "x");
  Alcotest.(check (option (float 1e-9))) "mean_opt unknown" None
    (Stats.Summary.mean_opt s "nope");
  Alcotest.(check (option (float 1e-9))) "max_opt unknown" None
    (Stats.Summary.max_opt s "nope")

let test_table_renders () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Stats.Table.add_row t [ "1"; "2" ];
  Stats.Table.add_rowf t "%d|%s" 3 "four";
  Stats.Table.note t "a note";
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Stats.Table.pp fmt t;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "title present" true
    (Testutil.contains s "demo");
  Alcotest.(check bool) "cell present" true (Testutil.contains s "four");
  Alcotest.(check bool) "note present" true (Testutil.contains s "a note")

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Stats.Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Stats.Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "pct" "50.0%" (Stats.Table.cell_pct 0.5);
  Alcotest.(check string) "bool" "yes" (Stats.Table.cell_bool true)

let test_table_too_many_cells () =
  let t = Stats.Table.create ~title:"x" ~columns:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than columns") (fun () ->
      Stats.Table.add_row t [ "1"; "2" ])

(* ---------- properties ---------- *)

let qcheck_tv_bounds =
  QCheck.Test.make ~name:"TV distance in [0,1]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 10.0))
    (fun weights ->
      let total = List.fold_left ( +. ) 0.0 weights in
      QCheck.assume (total > 0.0);
      let p = Array.of_list (List.map (fun w -> w /. total) weights) in
      let tv = Stats.Distance.tv_from_uniform p in
      tv >= -1e-9 && tv <= 1.0 +. 1e-9)

let qcheck_entropy_bounds =
  QCheck.Test.make ~name:"entropy within [0, log2 n]" ~count:300
    QCheck.(list_of_size (Gen.int_range 2 50) (int_range 0 1000))
    (fun counts ->
      let c = Array.of_list counts in
      QCheck.assume (Array.exists (fun x -> x > 0) c);
      let e = Stats.Entropy.of_counts c in
      e >= -1e-9 && e <= Stats.Entropy.max_entropy (Array.length c) +. 1e-9)

let qcheck_moments_match_naive =
  QCheck.Test.make ~name:"online moments equal naive computation" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 100) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.Moments.create () in
      List.iter (Stats.Moments.add m) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      abs_float (Stats.Moments.mean m -. mean) < 1e-6
      && abs_float (Stats.Moments.variance m -. var) < 1e-4)

(* ---------- Histogram.merge / Log_histogram ---------- *)

let test_histogram_merge_exact () =
  let size = 32 in
  let a = Stats.Histogram.create ~size
  and b = Stats.Histogram.create ~size
  and whole = Stats.Histogram.create ~size in
  for i = 0 to 499 do
    let v = i * i mod size in
    Stats.Histogram.add whole v;
    Stats.Histogram.add (if i mod 3 = 0 then a else b) v
  done;
  let merged = Stats.Histogram.merge a b in
  Alcotest.(check int) "total" (Stats.Histogram.total whole)
    (Stats.Histogram.total merged);
  for v = 0 to size - 1 do
    Alcotest.(check int)
      (Printf.sprintf "count %d" v)
      (Stats.Histogram.count whole v)
      (Stats.Histogram.count merged v)
  done

let test_histogram_merge_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Histogram.merge: size mismatch") (fun () ->
      ignore
        (Stats.Histogram.merge
           (Stats.Histogram.create ~size:4)
           (Stats.Histogram.create ~size:8)))

let test_log_histogram_small_exact () =
  (* below sub_buckets every value has its own cell: quantiles are exact *)
  let h = Stats.Log_histogram.create () in
  for v = 0 to 31 do
    Stats.Log_histogram.add h v
  done;
  Alcotest.(check int) "total" 32 (Stats.Log_histogram.total h);
  Alcotest.(check int) "median" 15 (Stats.Log_histogram.percentile h 0.5);
  Alcotest.(check int) "p100" 31 (Stats.Log_histogram.percentile h 1.0);
  Alcotest.(check int) "max" 31 (Stats.Log_histogram.max_observed h)

let test_log_histogram_relative_error () =
  (* one distinct value: every quantile is capped at max_observed = v *)
  List.iter
    (fun v ->
      let h = Stats.Log_histogram.create () in
      Stats.Log_histogram.add_many h v 10;
      Alcotest.(check int)
        (Printf.sprintf "p50 of constant %d" v)
        v
        (Stats.Log_histogram.percentile h 0.5);
      (* and the cell containing v is never wider than v / 32 + 1 *)
      let lo, hi, _ =
        List.find
          (fun (lo, hi, _) -> lo <= v && v <= hi)
          (Stats.Log_histogram.buckets h)
      in
      Alcotest.(check bool)
        (Printf.sprintf "cell width at %d" v)
        true
        (hi - lo <= (v / Stats.Log_histogram.sub_buckets) + 1))
    [ 1; 31; 32; 33; 100; 1_000; 65_535; 1_000_000; 123_456_789 ]

let test_log_histogram_guards () =
  let h = Stats.Log_histogram.create () in
  Alcotest.check_raises "negative value"
    (Invalid_argument "Log_histogram.add: negative value") (fun () ->
      Stats.Log_histogram.add h (-1));
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Log_histogram.percentile: empty histogram") (fun () ->
      ignore (Stats.Log_histogram.percentile h 0.5));
  Stats.Log_histogram.add h 7;
  Alcotest.check_raises "p above 1"
    (Invalid_argument "Log_histogram.percentile: p outside [0, 1]") (fun () ->
      ignore (Stats.Log_histogram.percentile h 1.5));
  Alcotest.check_raises "p below 0"
    (Invalid_argument "Log_histogram.percentile: p outside [0, 1]") (fun () ->
      ignore (Stats.Log_histogram.percentile h (-0.1)));
  Alcotest.check_raises "p nan"
    (Invalid_argument "Log_histogram.percentile: p outside [0, 1]") (fun () ->
      ignore (Stats.Log_histogram.percentile h Float.nan))

(* Regression for the upper-bound bias: every sample below 2*sub_buckets
   sits in a single-valued cell, so the histogram mean must equal the
   exact sample mean — the old implementation was exact here too, but
   anything in a wider cell was pulled toward the cell's upper bound. *)
let test_log_histogram_mean_exact () =
  let h = Stats.Log_histogram.create () in
  let sample = [ 0; 1; 1; 5; 17; 31; 32; 63; 63; 12 ] in
  List.iter (Stats.Log_histogram.add h) sample;
  let exact =
    float_of_int (List.fold_left ( + ) 0 sample)
    /. float_of_int (List.length sample)
  in
  Alcotest.(check (float 1e-9)) "mean exact below 2*sub_buckets" exact
    (Stats.Log_histogram.mean h)

let test_log_histogram_mean_midpoint () =
  (* 100 lives in cell [100, 101]: the midpoint estimate is 100.5; the
     pre-fix upper-bound weighting reported 101. *)
  let h = Stats.Log_histogram.create () in
  Stats.Log_histogram.add_many h 100 4;
  Alcotest.(check (float 1e-9)) "midpoint, not upper bound" 100.5
    (Stats.Log_histogram.mean h);
  (* mixed-width cells: error stays within half a cell width per sample *)
  let h = Stats.Log_histogram.create () in
  let sample = [ 2; 4; 100; 100 ] in
  List.iter (Stats.Log_histogram.add h) sample;
  Alcotest.(check (float 1e-9)) "weighted midpoints" 51.75
    (Stats.Log_histogram.mean h)

let test_log_histogram_percentile_edges () =
  (* p = 0 selects the first observation, never an empty cell 0 (whose
     upper bound 0 made the old code report 0 for any sample). *)
  let h = Stats.Log_histogram.create () in
  Stats.Log_histogram.add h 10;
  Stats.Log_histogram.add h 500;
  Alcotest.(check int) "p0 = min cell" 10 (Stats.Log_histogram.percentile h 0.0);
  Alcotest.(check int) "p1 = max" 500 (Stats.Log_histogram.percentile h 1.0);
  (* single bucket: every p collapses to the one value *)
  let h = Stats.Log_histogram.create () in
  Stats.Log_histogram.add_many h 77 9;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "constant sample, p=%g" p)
        77
        (Stats.Log_histogram.percentile h p))
    [ 0.0; 0.5; 0.999; 1.0 ];
  (* all mass in the last (largest) cell: the accumulator loop must
     examine the final cell rather than returning n-1 blindly *)
  let h = Stats.Log_histogram.create () in
  Stats.Log_histogram.add_many h 123_456_789 5;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "all-mass-in-last-cell, p=%g" p)
        123_456_789
        (Stats.Log_histogram.percentile h p))
    [ 0.0; 0.5; 0.999; 1.0 ]

let qcheck_log_histogram_percentile_props =
  QCheck.Test.make
    ~name:"log-histogram percentiles are bounded by the sample and monotone"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 10_000_000))
    (fun sample ->
      let h = Stats.Log_histogram.create () in
      List.iter (Stats.Log_histogram.add h) sample;
      let lo = List.fold_left min max_int sample in
      let ps = [ 0.0; 0.25; 0.5; 0.999; 1.0 ] in
      let qs = List.map (Stats.Log_histogram.percentile h) ps in
      List.for_all
        (fun q -> q >= lo && q <= Stats.Log_histogram.max_observed h)
        qs
      && List.for_all2 ( <= ) qs (List.tl qs @ [ max_int ]))

(* ---------- Float_text ---------- *)

let test_float_text_known () =
  List.iter
    (fun (f, s) ->
      Alcotest.(check string) (Printf.sprintf "repr %h" f) s
        (Stats.Float_text.json_repr f))
    [
      (0.0, "0.0");
      (-0.0, "-0.0");
      (3.0, "3.0");
      (0.1, "0.1");
      (1e22, "1e+22");
      (Float.nan, "nan");
      (Float.infinity, "inf");
      (Float.neg_infinity, "-inf");
    ]

let qcheck_float_text_roundtrip =
  QCheck.Test.make ~name:"Float_text reprs parse back bit-for-bit" ~count:2000
    QCheck.(int64)
    (fun bits ->
      let f = Int64.float_of_bits bits in
      QCheck.assume (not (Float.is_nan f));
      Int64.bits_of_float (float_of_string (Stats.Float_text.repr f)) = bits
      && Int64.bits_of_float (float_of_string (Stats.Float_text.json_repr f))
         = bits)

(* ---------- Windowed ---------- *)

module Windowed_hist = Stats.Windowed.Make (Stats.Log_histogram)

let test_windowed_basic () =
  let w =
    Windowed_hist.create ~window:4 ~empty:Stats.Log_histogram.create ()
  in
  Alcotest.(check (list int)) "no windows yet" []
    (List.map fst (Windowed_hist.windows w));
  for round = 0 to 11 do
    Windowed_hist.observe w ~round (fun h ->
        Stats.Log_histogram.add h (round * 10))
  done;
  Alcotest.(check (list int)) "one window per 4 rounds" [ 0; 1; 2 ]
    (List.map fst (Windowed_hist.windows w));
  Alcotest.(check int) "observations" 12 (Windowed_hist.observations w);
  Alcotest.(check int) "closed windows" 2 (Windowed_hist.closed_windows w);
  Alcotest.(check (option int)) "current window" (Some 2)
    (Windowed_hist.current_window w);
  let per_window =
    List.map (fun (_, h) -> Stats.Log_histogram.total h)
      (Windowed_hist.windows w)
  in
  Alcotest.(check (list int)) "4 observations per window" [ 4; 4; 4 ]
    per_window;
  Alcotest.(check int) "total spans everything" 12
    (Stats.Log_histogram.total (Windowed_hist.total w));
  Alcotest.check_raises "round regression"
    (Invalid_argument "Windowed.observe: rounds must be non-decreasing")
    (fun () -> Windowed_hist.observe w ~round:3 (fun _ -> ()))

let test_windowed_fold_mode () =
  (* retain:false keeps only the open window but the same grand total *)
  let w =
    Windowed_hist.create ~window:2 ~retain:false
      ~empty:Stats.Log_histogram.create ()
  in
  for round = 0 to 9 do
    Windowed_hist.observe w ~round (fun h -> Stats.Log_histogram.add h round)
  done;
  Alcotest.(check int) "only the open window is retained" 1
    (List.length (Windowed_hist.windows w));
  Alcotest.(check int) "closed windows still counted" 4
    (Windowed_hist.closed_windows w);
  Alcotest.(check int) "total survives folding" 10
    (Stats.Log_histogram.total (Windowed_hist.total w))

(* The Mergeable.S law this module leans on: because merge is lossless
   and associative, the grand total is invariant under window width and
   the retain flag. *)
let qcheck_windowed_total_invariant =
  QCheck.Test.make
    ~name:"windowed total is invariant under window width and retain flag"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 200)
           (pair (int_range 0 100) (int_range 0 100_000)))
        (int_range 1 16))
    (fun (obs, window) ->
      (* rounds must be non-decreasing: sort the observation stream *)
      let obs = List.sort compare obs in
      let reference = Stats.Log_histogram.create () in
      List.iter (fun (_, v) -> Stats.Log_histogram.add reference v) obs;
      let build retain =
        let w =
          Windowed_hist.create ~window ~retain
            ~empty:Stats.Log_histogram.create ()
        in
        List.iter
          (fun (round, v) ->
            Windowed_hist.observe w ~round (fun h ->
                Stats.Log_histogram.add h v))
          obs;
        Windowed_hist.total w
      in
      Stats.Log_histogram.equal reference (build true)
      && Stats.Log_histogram.equal reference (build false))

(* The satellite property: merging per-shard histograms is exactly the
   sequential accumulation, for any assignment of observations to shards. *)
let qcheck_log_histogram_shard_merge =
  QCheck.Test.make ~name:"log-histogram shard merge = sequential accumulation"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (pair (int_range 0 1_000_000) (int_range 0 3)))
    (fun obs ->
      let shards = Array.init 4 (fun _ -> Stats.Log_histogram.create ()) in
      let whole = Stats.Log_histogram.create () in
      List.iter
        (fun (v, s) ->
          Stats.Log_histogram.add whole v;
          Stats.Log_histogram.add shards.(s) v)
        obs;
      let merged =
        Array.fold_left Stats.Log_histogram.merge
          (Stats.Log_histogram.create ())
          shards
      in
      Stats.Log_histogram.equal whole merged
      && Stats.Log_histogram.total whole = Stats.Log_histogram.total merged
      && (Stats.Log_histogram.total whole = 0
         || Stats.Log_histogram.percentile whole 0.99
            = Stats.Log_histogram.percentile merged 0.99))

let qcheck_histogram_shard_merge =
  QCheck.Test.make ~name:"exact histogram shard merge = sequential accumulation"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 0 200) (pair (int_range 0 63) (int_range 0 2)))
    (fun obs ->
      let shards = Array.init 3 (fun _ -> Stats.Histogram.create ~size:64) in
      let whole = Stats.Histogram.create ~size:64 in
      List.iter
        (fun (v, s) ->
          Stats.Histogram.add whole v;
          Stats.Histogram.add shards.(s) v)
        obs;
      let merged =
        Array.fold_left Stats.Histogram.merge
          (Stats.Histogram.create ~size:64)
          shards
      in
      Stats.Histogram.total whole = Stats.Histogram.total merged
      && List.for_all
           (fun v -> Stats.Histogram.count whole v = Stats.Histogram.count merged v)
           (List.init 64 Fun.id))

(* Associativity of the MERGEABLE contract: a sweep may fold per-shard
   accumulators in any grouping, so merge (merge a b) c must equal
   merge a (merge b c).  Exact for the counting accumulators; within
   float tolerance for the online moments. *)
let qcheck_histogram_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 50) (int_range 0 31))
        (list_of_size (Gen.int_range 0 50) (int_range 0 31))
        (list_of_size (Gen.int_range 0 50) (int_range 0 31)))
    (fun (xs, ys, zs) ->
      let fill vs =
        let h = Stats.Histogram.create ~size:32 in
        List.iter (Stats.Histogram.add h) vs;
        h
      in
      let a = fill xs and b = fill ys and c = fill zs in
      let l = Stats.Histogram.merge (Stats.Histogram.merge a b) c in
      let r = Stats.Histogram.merge a (Stats.Histogram.merge b c) in
      Stats.Histogram.total l = Stats.Histogram.total r
      && List.for_all
           (fun v -> Stats.Histogram.count l v = Stats.Histogram.count r v)
           (List.init 32 Fun.id))

let qcheck_log_histogram_merge_associative =
  QCheck.Test.make ~name:"log-histogram merge is associative" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 50) (int_range 0 1_000_000))
        (list_of_size (Gen.int_range 0 50) (int_range 0 1_000_000))
        (list_of_size (Gen.int_range 0 50) (int_range 0 1_000_000)))
    (fun (xs, ys, zs) ->
      let fill vs =
        let h = Stats.Log_histogram.create () in
        List.iter (Stats.Log_histogram.add h) vs;
        h
      in
      let a = fill xs and b = fill ys and c = fill zs in
      Stats.Log_histogram.equal
        (Stats.Log_histogram.merge (Stats.Log_histogram.merge a b) c)
        (Stats.Log_histogram.merge a (Stats.Log_histogram.merge b c)))

let qcheck_moments_merge_associative =
  QCheck.Test.make
    ~name:"moments merge is associative (within float tolerance)" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 40) (float_range (-100.) 100.))
        (list_of_size (Gen.int_range 0 40) (float_range (-100.) 100.))
        (list_of_size (Gen.int_range 0 40) (float_range (-100.) 100.)))
    (fun (xs, ys, zs) ->
      let fill vs =
        let m = Stats.Moments.create () in
        List.iter (Stats.Moments.add m) vs;
        m
      in
      let a = fill xs and b = fill ys and c = fill zs in
      let l = Stats.Moments.merge (Stats.Moments.merge a b) c in
      let r = Stats.Moments.merge a (Stats.Moments.merge b c) in
      let close x y = abs_float (x -. y) < 1e-6 in
      Stats.Moments.count l = Stats.Moments.count r
      && close (Stats.Moments.mean l) (Stats.Moments.mean r)
      && close (Stats.Moments.variance l) (Stats.Moments.variance r)
      && Stats.Moments.min l = Stats.Moments.min r
      && Stats.Moments.max l = Stats.Moments.max r)

let qcheck_moments_shard_merge =
  QCheck.Test.make
    ~name:"moments shard merge = sequential accumulation (within tolerance)"
    ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (pair (float_range (-100.) 100.) (int_range 0 3)))
    (fun obs ->
      let shards = Array.init 4 (fun _ -> Stats.Moments.create ()) in
      let whole = Stats.Moments.create () in
      List.iter
        (fun (v, s) ->
          Stats.Moments.add whole v;
          Stats.Moments.add shards.(s) v)
        obs;
      let merged =
        Array.fold_left Stats.Moments.merge (Stats.Moments.create ()) shards
      in
      let close x y = abs_float (x -. y) < 1e-6 in
      Stats.Moments.count whole = Stats.Moments.count merged
      && close (Stats.Moments.mean whole) (Stats.Moments.mean merged)
      && close (Stats.Moments.variance whole) (Stats.Moments.variance merged)
      && Stats.Moments.min whole = Stats.Moments.min merged
      && Stats.Moments.max whole = Stats.Moments.max merged)

let () =
  Alcotest.run "stats"
    [
      ( "moments",
        [
          Alcotest.test_case "basic" `Quick test_moments_basic;
          Alcotest.test_case "empty" `Quick test_moments_empty;
          Alcotest.test_case "merge" `Quick test_moments_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "merge exact" `Quick test_histogram_merge_exact;
          Alcotest.test_case "merge size mismatch" `Quick
            test_histogram_merge_mismatch;
        ] );
      ( "log-histogram",
        [
          Alcotest.test_case "small values exact" `Quick
            test_log_histogram_small_exact;
          Alcotest.test_case "bounded relative error" `Quick
            test_log_histogram_relative_error;
          Alcotest.test_case "guards" `Quick test_log_histogram_guards;
          Alcotest.test_case "mean exact on single-valued cells" `Quick
            test_log_histogram_mean_exact;
          Alcotest.test_case "mean uses midpoints" `Quick
            test_log_histogram_mean_midpoint;
          Alcotest.test_case "percentile edges" `Quick
            test_log_histogram_percentile_edges;
        ] );
      ( "float-text",
        [ Alcotest.test_case "known reprs" `Quick test_float_text_known ] );
      ( "windowed",
        [
          Alcotest.test_case "basic windowing" `Quick test_windowed_basic;
          Alcotest.test_case "fold mode" `Quick test_windowed_fold_mode;
        ] );
      ( "distance",
        [
          Alcotest.test_case "tv basics" `Quick test_tv_basics;
          Alcotest.test_case "tv counts" `Quick test_tv_counts;
          Alcotest.test_case "l2" `Quick test_l2;
          Alcotest.test_case "kl" `Quick test_kl;
          Alcotest.test_case "noise floor" `Quick test_noise_floor_monotone;
        ] );
      ( "chi-square",
        [
          Alcotest.test_case "gammp" `Quick test_gammp_known;
          Alcotest.test_case "cdf" `Quick test_chi2_cdf_known;
          Alcotest.test_case "statistic" `Quick test_chi2_statistic;
          Alcotest.test_case "accepts uniform" `Slow test_chi2_uniform_accepts_uniform;
          Alcotest.test_case "rejects biased" `Quick test_chi2_uniform_rejects_biased;
        ] );
      ("entropy", [ Alcotest.test_case "entropy" `Quick test_entropy ]);
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_fit_linear_exact;
          Alcotest.test_case "classify growth" `Quick test_fit_classify;
        ] );
      ( "summary/table",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary unknown name raises" `Quick
            test_summary_unknown_name_raises;
          Alcotest.test_case "table renders" `Quick test_table_renders;
          Alcotest.test_case "table cells" `Quick test_table_cells;
          Alcotest.test_case "table guards" `Quick test_table_too_many_cells;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_tv_bounds; qcheck_entropy_bounds; qcheck_moments_match_naive;
            qcheck_histogram_shard_merge; qcheck_log_histogram_shard_merge;
            qcheck_log_histogram_percentile_props;
            qcheck_float_text_roundtrip; qcheck_windowed_total_invariant;
            qcheck_histogram_merge_associative;
            qcheck_log_histogram_merge_associative;
            qcheck_moments_merge_associative; qcheck_moments_shard_merge;
          ] );
    ]
