(* Tests for the synchronous message-passing simulator, in particular the
   paper's blocking semantics (Section 1.1): a message from v to w sent in
   round i is processed iff v is non-blocked in round i and w is non-blocked
   in rounds i and i+1. *)

let msg_bits (_ : string) = 64

(* ---------- Msg_size ---------- *)

let test_id_bits () =
  Alcotest.(check int) "2 nodes" 1 (Simnet.Msg_size.id_bits 2);
  Alcotest.(check int) "3 nodes" 2 (Simnet.Msg_size.id_bits 3);
  Alcotest.(check int) "1024 nodes" 10 (Simnet.Msg_size.id_bits 1024);
  Alcotest.(check int) "1025 nodes" 11 (Simnet.Msg_size.id_bits 1025)

let test_ids_msg () =
  Alcotest.(check int) "header only" Simnet.Msg_size.header_bits
    (Simnet.Msg_size.ids_msg ~id_bits:10 ~count:0);
  Alcotest.(check int) "three ids" (Simnet.Msg_size.header_bits + 30)
    (Simnet.Msg_size.ids_msg ~id_bits:10 ~count:3)

(* ---------- Metrics ---------- *)

let test_metrics_rounds () =
  let m = Simnet.Metrics.create ~n:3 in
  Simnet.Metrics.on_send m ~node:0 ~bits:10;
  Simnet.Metrics.on_recv m ~node:1 ~bits:10;
  Simnet.Metrics.on_send m ~node:1 ~bits:5;
  Simnet.Metrics.on_recv m ~node:2 ~bits:5;
  let s = Simnet.Metrics.finish_round m in
  Alcotest.(check int) "round index" 0 s.Simnet.Metrics.round;
  Alcotest.(check int) "msgs delivered" 2 s.Simnet.Metrics.msgs;
  Alcotest.(check int) "total bits" 30 s.Simnet.Metrics.bits;
  (* node 1 sent 5 and received 10 *)
  Alcotest.(check int) "max node bits" 15 s.Simnet.Metrics.max_node_bits;
  (* next round: counters reset *)
  let s2 = Simnet.Metrics.finish_round m in
  Alcotest.(check int) "reset" 0 s2.Simnet.Metrics.bits;
  Alcotest.(check int) "totals accumulate" 30 (Simnet.Metrics.total_bits m);
  Alcotest.(check int) "rounds" 2 (Simnet.Metrics.rounds m);
  Alcotest.(check int) "history" 2 (List.length (Simnet.Metrics.history m))

let test_metrics_max_ever () =
  let m = Simnet.Metrics.create ~n:2 in
  Simnet.Metrics.on_send m ~node:0 ~bits:100;
  ignore (Simnet.Metrics.finish_round m);
  Simnet.Metrics.on_send m ~node:0 ~bits:7;
  ignore (Simnet.Metrics.finish_round m);
  Alcotest.(check int) "max ever" 100 (Simnet.Metrics.max_node_bits_ever m)

(* ---------- Engine: plain delivery ---------- *)

let test_engine_delivery_next_round () =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits () in
  let got = ref [] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 0 then Simnet.Engine.send eng ~src:0 ~dst:1 "hello";
      if inbox <> [] then got := inbox @ !got);
  Alcotest.(check (list (pair int string))) "nothing in round 0" [] !got;
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox ->
      got := inbox @ !got);
  Alcotest.(check (list (pair int string))) "delivered in round 1"
    [ (0, "hello") ] !got;
  Alcotest.(check int) "round advanced" 2 (Simnet.Engine.round eng)

let test_engine_arrival_order () =
  let eng = Simnet.Engine.create ~n:3 ~msg_bits () in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then begin
        Simnet.Engine.send eng ~src:0 ~dst:2 "a";
        Simnet.Engine.send eng ~src:0 ~dst:2 "b"
      end;
      if me = 1 then Simnet.Engine.send eng ~src:1 ~dst:2 "c");
  let got = ref [] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 2 then got := inbox);
  Alcotest.(check int) "three messages" 3 (List.length !got);
  (* messages from node 0 keep their send order *)
  let from0 = List.filter (fun (s, _) -> s = 0) !got in
  Alcotest.(check (list (pair int string))) "fifo per sender"
    [ (0, "a"); (0, "b") ] from0

(* ---------- Engine: blocking semantics ---------- *)

let run_blocking_scenario ~sender_blocked_at_send ~recv_blocked_at_send
    ~recv_blocked_at_delivery =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits () in
  Simnet.Engine.set_blocked eng (fun v ->
      (v = 0 && sender_blocked_at_send) || (v = 1 && recv_blocked_at_send));
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then Simnet.Engine.send eng ~src:0 ~dst:1 "m");
  Simnet.Engine.set_blocked eng (fun v -> v = 1 && recv_blocked_at_delivery);
  let got = ref [] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 1 then got := inbox);
  !got

let test_blocking_none () =
  Alcotest.(check int) "clean delivery" 1
    (List.length
       (run_blocking_scenario ~sender_blocked_at_send:false
          ~recv_blocked_at_send:false ~recv_blocked_at_delivery:false))

let test_blocking_sender_at_send () =
  Alcotest.(check int) "sender blocked in round i" 0
    (List.length
       (run_blocking_scenario ~sender_blocked_at_send:true
          ~recv_blocked_at_send:false ~recv_blocked_at_delivery:false))

let test_blocking_receiver_at_send () =
  Alcotest.(check int) "receiver blocked in round i" 0
    (List.length
       (run_blocking_scenario ~sender_blocked_at_send:false
          ~recv_blocked_at_send:true ~recv_blocked_at_delivery:false))

let test_blocking_receiver_at_delivery () =
  Alcotest.(check int) "receiver blocked in round i+1" 0
    (List.length
       (run_blocking_scenario ~sender_blocked_at_send:false
          ~recv_blocked_at_send:false ~recv_blocked_at_delivery:true))

let test_send_from_blocked_dropped () =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits () in
  Simnet.Engine.set_blocked eng (fun v -> v = 0);
  (* the engine's send-time check drops this immediately *)
  Simnet.Engine.send eng ~src:0 ~dst:1 "m";
  let got = ref [ (9, "sentinel") ] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 1 then got := inbox);
  Alcotest.(check (list (pair int string))) "dropped at send time" [] !got

let test_blocking_resets_each_round () =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits () in
  Simnet.Engine.set_blocked eng (fun _ -> true);
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ ->
      Alcotest.fail "blocked nodes must not compute");
  (* next round: nobody blocked by default again *)
  let ran = ref 0 in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ -> incr ran);
  Alcotest.(check int) "all nodes compute after reset" 2 !ran

let test_blocked_node_does_not_compute () =
  let eng = Simnet.Engine.create ~n:3 ~msg_bits () in
  Simnet.Engine.set_blocked eng (fun v -> v = 1);
  let ran = ref [] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      ran := me :: !ran);
  Alcotest.(check (list int)) "only 0 and 2 compute" [ 2; 0 ] !ran

(* ---------- Engine: subset computation ---------- *)

let test_subset_step () =
  let eng = Simnet.Engine.create ~n:4 ~msg_bits () in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then begin
        Simnet.Engine.send eng ~src:0 ~dst:1 "for-member";
        Simnet.Engine.send eng ~src:0 ~dst:3 "for-nonmember"
      end);
  let got = ref [] in
  Simnet.Engine.deliver_and_step_subset eng ~nodes:[| 0; 1 |]
    (fun ~round:_ ~me ~inbox -> if inbox <> [] then got := (me, inbox) :: !got);
  Alcotest.(check int) "member got its message" 1 (List.length !got);
  (* node 3's message is lost: it was not computing that round *)
  let got3 = ref [] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 3 then got3 := inbox);
  Alcotest.(check int) "non-member message lost" 0 (List.length !got3)

(* ---------- Engine: metrics accounting ---------- *)

let test_engine_metrics () =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits:(fun _ -> 10) () in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then Simnet.Engine.send eng ~src:0 ~dst:1 "x");
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ -> ());
  let m = Simnet.Engine.metrics eng in
  Alcotest.(check int) "one delivered message" 1 (Simnet.Metrics.total_msgs m);
  (* 10 bits sent + 10 bits received *)
  Alcotest.(check int) "bits counted on both ends" 20 (Simnet.Metrics.total_bits m)

let test_engine_metrics_not_charged_when_dropped () =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits:(fun _ -> 10) () in
  Simnet.Engine.set_blocked eng (fun v -> v = 1);
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then Simnet.Engine.send eng ~src:0 ~dst:1 "x");
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ -> ());
  let m = Simnet.Engine.metrics eng in
  Alcotest.(check int) "nothing delivered" 0 (Simnet.Metrics.total_msgs m);
  Alcotest.(check int) "no bits charged" 0 (Simnet.Metrics.total_bits m)

let test_engine_metrics_not_charged_on_delivery_block () =
  (* The message passes the send-time checks (round i), so the sender pays;
     the receiver is blocked in round i+1, so it is dropped at delivery and
     the receive side must not be charged. *)
  let eng = Simnet.Engine.create ~n:2 ~msg_bits:(fun _ -> 10) () in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then Simnet.Engine.send eng ~src:0 ~dst:1 "x");
  Simnet.Engine.set_blocked eng (fun v -> v = 1);
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 1 then Alcotest.fail "blocked receiver must not compute"
      else Alcotest.(check int) "nothing delivered to 0" 0 (List.length inbox));
  let m = Simnet.Engine.metrics eng in
  Alcotest.(check int) "no message delivered" 0 (Simnet.Metrics.total_msgs m);
  Alcotest.(check int) "only the send side charged" 10
    (Simnet.Metrics.total_bits m)

let test_subset_lost_inbox_not_charged () =
  (* deliver_and_step_subset: a message to a node outside the computing
     subset is lost, and the receive side is not charged for it. *)
  let eng = Simnet.Engine.create ~n:4 ~msg_bits:(fun _ -> 10) () in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then begin
        Simnet.Engine.send eng ~src:0 ~dst:1 "for-member";
        Simnet.Engine.send eng ~src:0 ~dst:3 "for-nonmember"
      end);
  Simnet.Engine.deliver_and_step_subset eng ~nodes:[| 0; 1 |]
    (fun ~round:_ ~me:_ ~inbox:_ -> ());
  let m = Simnet.Engine.metrics eng in
  Alcotest.(check int) "only the member's message delivered" 1
    (Simnet.Metrics.total_msgs m);
  (* two sends (20 bits) + one receive (10 bits) *)
  Alcotest.(check int) "lost inbox not charged" 30 (Simnet.Metrics.total_bits m)

let test_set_blocked_after_send_raises () =
  let eng = Simnet.Engine.create ~n:2 ~msg_bits () in
  Simnet.Engine.send eng ~src:0 ~dst:1 "m";
  Alcotest.check_raises "set_blocked after send"
    (Invalid_argument "Engine.set_blocked: called after sends in this round")
    (fun () -> Simnet.Engine.set_blocked eng (fun _ -> false));
  (* after the round boundary the guard resets *)
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ -> ());
  Simnet.Engine.set_blocked eng (fun _ -> false)

let test_engine_disabled_metrics () =
  let eng = Simnet.Engine.create ~metrics:false ~n:2 ~msg_bits () in
  Alcotest.check_raises "metrics disabled"
    (Invalid_argument "Engine.metrics: metrics disabled") (fun () ->
      ignore (Simnet.Engine.metrics eng))

(* ---------- Trace ---------- *)

let value_testable =
  let pp fmt = function
    | Simnet.Trace.Int i -> Format.fprintf fmt "Int %d" i
    | Simnet.Trace.Float f -> Format.fprintf fmt "Float %g" f
    | Simnet.Trace.Bool b -> Format.fprintf fmt "Bool %b" b
    | Simnet.Trace.String s -> Format.fprintf fmt "String %S" s
  in
  Alcotest.testable pp ( = )

let check_field fields key expected =
  Alcotest.(check (option value_testable)) key (Some expected)
    (List.assoc_opt key fields)

let test_trace_jsonl_engine_roundtrip () =
  (* End-to-end: an engine with a JSONL file sink emits exactly one
     well-formed round record per simulated round, and parsing them back
     recovers the round indices and blocked-set sizes. *)
  let path = Filename.temp_file "simnet_trace" ".jsonl" in
  let trace = Simnet.Trace.open_file path in
  let n = 3 in
  let eng = Simnet.Engine.create ~trace ~n ~msg_bits:(fun _ -> 8) () in
  let rounds = 5 in
  for r = 0 to rounds - 1 do
    if r = 2 then Simnet.Engine.set_blocked eng (fun v -> v = 1);
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
        Simnet.Engine.send eng ~src:me ~dst:((me + 1) mod n) "m")
  done;
  Simnet.Trace.close trace;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per round" rounds (List.length lines);
  List.iteri
    (fun i line ->
      match Simnet.Trace.parse_jsonl_line line with
      | None -> Alcotest.failf "unparseable line %d: %s" i line
      | Some fields ->
          check_field fields "ev" (Simnet.Trace.String "round");
          check_field fields "round" (Simnet.Trace.Int i);
          check_field fields "blocked"
            (Simnet.Trace.Int (if i = 2 then 1 else 0)))
    lines

let test_trace_event_serialization_roundtrip () =
  (* jsonl_of_event output must parse back, including escaped strings. *)
  let check_roundtrip ev expected =
    let line = Simnet.Trace.jsonl_of_event ev in
    match Simnet.Trace.parse_jsonl_line line with
    | None -> Alcotest.failf "unparseable: %s" line
    | Some fields -> List.iter (fun (k, v) -> check_field fields k v) expected
  in
  check_roundtrip
    (Simnet.Trace.Span
       {
         name = "reconfig/sample";
         rounds = 3;
         fields =
           [
             ("labels", Simnet.Trace.Int 42);
             ("note", Simnet.Trace.String "a\"b\\c\nd");
             ("ok", Simnet.Trace.Bool true);
             ("ratio", Simnet.Trace.Float 0.25);
           ];
       })
    [
      ("ev", Simnet.Trace.String "span");
      ("name", Simnet.Trace.String "reconfig/sample");
      ("rounds", Simnet.Trace.Int 3);
      ("labels", Simnet.Trace.Int 42);
      ("note", Simnet.Trace.String "a\"b\\c\nd");
      ("ok", Simnet.Trace.Bool true);
      ("ratio", Simnet.Trace.Float 0.25);
    ];
  check_roundtrip
    (Simnet.Trace.Adversary
       { kind = "dos"; fields = [ ("blocked", Simnet.Trace.Int 17) ] })
    [
      ("ev", Simnet.Trace.String "adversary");
      ("kind", Simnet.Trace.String "dos");
      ("blocked", Simnet.Trace.Int 17);
    ];
  check_roundtrip
    (Simnet.Trace.Request
       {
         op = "publish";
         round = 12;
         client = 5;
         latency = 9;
         hops = 6;
         status = "ok";
       })
    [
      ("ev", Simnet.Trace.String "request");
      ("op", Simnet.Trace.String "publish");
      ("round", Simnet.Trace.Int 12);
      ("client", Simnet.Trace.Int 5);
      ("latency", Simnet.Trace.Int 9);
      ("hops", Simnet.Trace.Int 6);
      ("status", Simnet.Trace.String "ok");
    ]

let test_trace_null_is_disabled () =
  Alcotest.(check bool) "null disabled" false
    (Simnet.Trace.enabled Simnet.Trace.null);
  (* emitting into the null trace is a no-op, not an error *)
  Simnet.Trace.emit Simnet.Trace.null
    (Simnet.Trace.Note { name = "x"; fields = [] });
  Simnet.Trace.close Simnet.Trace.null

(* ---------- binary traces ---------- *)

(* Structural comparison that treats nan = nan (events carrying nan
   floats must still round-trip; (=) would report them unequal). *)
let events_equal a b = compare a b = 0

let binary_roundtrip events =
  let path = Filename.temp_file "simnet_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace = Simnet.Trace.open_file path in
      List.iter (Simnet.Trace.emit trace) events;
      Simnet.Trace.close trace;
      Simnet.Trace.read_binary_file path)

let exhaustive_events =
  Simnet.Trace.
    [
      (* compact layouts *)
      Round
        {
          round = 0;
          msgs = 12;
          bits = 4096;
          max_node_bits = 64;
          max_node_msgs = 3;
          blocked = 0;
        };
      Request
        { op = "read"; round = 1; client = 7; latency = 3; hops = 2; status = "ok" };
      (* wide fallbacks: values past the compact widths *)
      Round
        {
          round = max_int;
          msgs = -1;
          bits = min_int;
          max_node_bits = 1 lsl 40;
          max_node_msgs = 1 lsl 20;
          blocked = 0;
        };
      Request
        {
          op = String.make 100 'x';
          (* > 64 bytes: inlined, not interned *)
          round = max_int;
          client = -3;
          latency = 1 lsl 33;
          hops = 70_000;
          status = "ok";
        };
      (* fielded events with every value shape *)
      Span
        {
          name = "reconfig/sample";
          rounds = 3;
          fields =
            [
              ("labels", Int 42);
              ("big", Int (1 lsl 40));
              ("neg", Int (-7));
              ("note", String "a\"b\\c\nd");
              ("long", String (String.make 200 'y'));
              ("ok", Bool true);
              ("off", Bool false);
              ("ratio", Float 0.25);
              ("nz", Float (-0.0));
              ("nan", Float Float.nan);
              ("inf", Float Float.neg_infinity);
            ];
        };
      Adversary { kind = "dos"; fields = [ ("blocked", Int 17) ] };
      Note { name = "header"; fields = [] };
      Fault { kind = "drop"; round = 9; fields = [ ("src", Int 1); ("dst", Int 2) ] };
      Progress
        {
          sweep = "demo";
          cell = "n=64;c=1.5";
          index = 3;
          completed = 4;
          total = 8;
          wall_s = 0.125;
          cached = true;
        };
    ]

let test_trace_binary_roundtrip () =
  let decoded = binary_roundtrip exhaustive_events in
  Alcotest.(check int) "event count" (List.length exhaustive_events)
    (List.length decoded);
  Alcotest.(check bool) "events round-trip exactly" true
    (events_equal exhaustive_events decoded)

let test_trace_binary_export_matches_jsonl () =
  (* the property trace_check --export-jsonl relies on: decoding and
     re-encoding through jsonl_of_event reproduces the text sink's bytes *)
  let direct =
    String.concat "\n" (List.map Simnet.Trace.jsonl_of_event exhaustive_events)
  in
  let exported =
    String.concat "\n"
      (List.map Simnet.Trace.jsonl_of_event (binary_roundtrip exhaustive_events))
  in
  Alcotest.(check string) "export equals direct JSONL" direct exported

let test_trace_binary_corrupt () =
  let path = Filename.temp_file "simnet_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a trace at all";
      close_out oc;
      Alcotest.(check bool) "magic sniff rejects" false
        (Simnet.Trace.is_binary_file path);
      (match Simnet.Trace.read_binary_file path with
      | _ -> Alcotest.fail "expected Failure on bad magic"
      | exception Failure _ -> ());
      (* a truncated but well-started file fails loudly, not silently *)
      let trace = Simnet.Trace.open_file path in
      List.iter (Simnet.Trace.emit trace) exhaustive_events;
      Simnet.Trace.close trace;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 3));
      close_out oc;
      match Simnet.Trace.read_binary_file path with
      | _ -> Alcotest.fail "expected Failure on truncated record"
      | exception Failure _ -> ())

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Simnet.Trace.Int i) int;
        map (fun b -> Simnet.Trace.Float (Int64.float_of_bits b)) int64;
        map (fun b -> Simnet.Trace.Bool b) bool;
        map (fun s -> Simnet.Trace.String s) (string_size (int_range 0 80));
      ])

let field_gen =
  QCheck.Gen.(pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) value_gen)

let event_gen =
  QCheck.Gen.(
    let fields = list_size (int_range 0 6) field_gen in
    let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
    oneof
      [
        map
          (fun ((round, msgs, bits), (max_node_bits, max_node_msgs, blocked)) ->
            Simnet.Trace.Round
              { round; msgs; bits; max_node_bits; max_node_msgs; blocked })
          (pair (triple int int int) (triple int int int));
        map2
          (fun (name, rounds) fields -> Simnet.Trace.Span { name; rounds; fields })
          (pair name int) fields;
        map2
          (fun kind fields -> Simnet.Trace.Adversary { kind; fields })
          name fields;
        map2 (fun name fields -> Simnet.Trace.Note { name; fields }) name fields;
        map2
          (fun (kind, round) fields -> Simnet.Trace.Fault { kind; round; fields })
          (pair name (int_bound 0xffff_ffff))
          fields;
        map
          (fun ((op, status), (round, client, latency), hops) ->
            Simnet.Trace.Request { op; round; client; latency; hops; status })
          (triple
             (pair (string_size (int_range 0 80)) name)
             (triple int int int) int);
        map
          (fun ((sweep, cell), (index, completed, total), (wall_s, cached)) ->
            Simnet.Trace.Progress
              {
                sweep;
                cell;
                index;
                completed;
                total;
                wall_s = Int64.float_of_bits wall_s;
                cached;
              })
          (triple
             (pair (string_size (int_range 0 80)) (string_size (int_range 0 80)))
             (triple int int int) (pair int64 bool));
      ])

let qcheck_trace_binary_roundtrip =
  QCheck.Test.make ~name:"binary trace encodes/decodes arbitrary events"
    ~count:100
    QCheck.(make Gen.(list_size (int_range 0 40) event_gen))
    (fun events -> events_equal events (binary_roundtrip events))

(* The headline satellite: the default JSONL rendering round-trips every
   finite float bit-for-bit through parse_jsonl_line — negative zero,
   subnormals and extreme magnitudes included (nan/infinities are
   deliberately encoded as strings and tested separately above). *)
let qcheck_trace_jsonl_float_roundtrip =
  QCheck.Test.make ~name:"JSONL floats round-trip bit-for-bit by default"
    ~count:2000
    QCheck.(
      oneof
        [
          int64;
          always 0x8000_0000_0000_0000L (* -0.0 *);
          always 1L (* smallest subnormal *);
          always 0x8000_0000_0000_0001L;
          always 0x7FEF_FFFF_FFFF_FFFFL (* max finite *);
        ])
    (fun bits ->
      let f = Int64.float_of_bits bits in
      QCheck.assume (Float.is_finite f);
      let line = Simnet.Trace.jsonl_of_pairs [ ("x", Simnet.Trace.Float f) ] in
      match Simnet.Trace.parse_jsonl_line line with
      | Some [ ("x", Simnet.Trace.Float g) ] ->
          Int64.bits_of_float g = Int64.bits_of_float f
      | _ -> false)

(* ---------- Snapshots ---------- *)

let test_snapshots_lateness () =
  let s = Simnet.Snapshots.create ~lateness:3 in
  Alcotest.(check (option int)) "empty" None (Simnet.Snapshots.view s);
  Simnet.Snapshots.push s 100;
  Simnet.Snapshots.push s 101;
  Simnet.Snapshots.push s 102;
  Alcotest.(check (option int)) "too fresh" None (Simnet.Snapshots.view s);
  Simnet.Snapshots.push s 103;
  (* 4 pushed: current round 3, visible = round 0 *)
  Alcotest.(check (option int)) "sees round 0" (Some 100) (Simnet.Snapshots.view s);
  Simnet.Snapshots.push s 104;
  Alcotest.(check (option int)) "sees round 1" (Some 101) (Simnet.Snapshots.view s)

let test_snapshots_zero_late () =
  let s = Simnet.Snapshots.create ~lateness:0 in
  Simnet.Snapshots.push s 7;
  Alcotest.(check (option int)) "0-late sees current" (Some 7)
    (Simnet.Snapshots.view s);
  Simnet.Snapshots.push s 8;
  Alcotest.(check (option int)) "still current" (Some 8) (Simnet.Snapshots.view s)

let test_snapshots_view_at () =
  let s = Simnet.Snapshots.create ~lateness:2 in
  List.iter (Simnet.Snapshots.push s) [ 10; 11; 12; 13; 14 ];
  (* current round 4; visible rounds are <= 2 *)
  Alcotest.(check (option int)) "round 2 visible" (Some 12)
    (Simnet.Snapshots.view_at s 2);
  Alcotest.(check (option int)) "round 3 hidden" None
    (Simnet.Snapshots.view_at s 3);
  Alcotest.(check (option int)) "round 0 evicted (ring keeps lateness+1)" None
    (Simnet.Snapshots.view_at s 0)

(* ---------- Invariants collectors ---------- *)

let kinds = List.map Simnet.Invariants.kind_of

let test_collect_clean () =
  Alcotest.(check (list string))
    "clean cycle" []
    (kinds (Simnet.Invariants.check_cycle_all [| 1; 2; 3; 0 |]));
  Alcotest.(check (list string))
    "clean family" []
    (kinds
       (Simnet.Invariants.check_all ~m:4 [| [| 1; 2; 3; 0 |]; [| 3; 0; 1; 2 |] |]))

let test_collect_all_defects_in_order () =
  (* node 1 points out of range, node 2 collides with node 0 on successor
     1; the collector reports both in node order where check_cycle stops
     at the first *)
  let succ = [| 1; 9; 1; 0 |] in
  Alcotest.(check (list string))
    "both defects, node order"
    [ "successor_out_of_range"; "successor_not_injective" ]
    (kinds (Simnet.Invariants.check_cycle_all succ));
  match Simnet.Invariants.check_cycle succ with
  | Error (Simnet.Invariants.Successor_out_of_range { node = 1; succ = 9; _ })
    ->
      ()
  | _ -> Alcotest.fail "check_cycle should stop at the out-of-range entry"

let test_collect_one_violation_per_orbit () =
  (* permutation with three orbits {0,1}, {2,3}, {4,5}: one violation per
     orbit beyond node 0's *)
  let vs = Simnet.Invariants.check_cycle_all [| 1; 0; 3; 2; 5; 4 |] in
  Alcotest.(check (list string))
    "two extra orbits"
    [ "not_single_cycle"; "not_single_cycle" ]
    (kinds vs);
  List.iter
    (function
      | Simnet.Invariants.Not_single_cycle { reached; size; _ } ->
          Alcotest.(check int) "orbit length" 2 reached;
          Alcotest.(check int) "size" 6 size
      | v -> Alcotest.failf "unexpected %s" (Simnet.Invariants.describe v))
    vs

let test_collect_family_size_mismatch () =
  Alcotest.(check (list string))
    "short cycle flagged, then checked on its own terms"
    [ "size_mismatch" ]
    (kinds
       (Simnet.Invariants.check_cycles_all ~m:4
          [| [| 1; 2; 3; 0 |]; [| 1; 2; 0 |] |]))

let test_collect_connectivity () =
  (* a 2-orbit permutation alone leaves {0,1} and {2,3} disconnected; a
     second, intact cycle bridges them *)
  Alcotest.(check (list string))
    "orbit defect plus disconnection"
    [ "not_single_cycle"; "disconnected" ]
    (kinds (Simnet.Invariants.check_all ~m:4 [| [| 1; 0; 3; 2 |] |]));
  Alcotest.(check (list string))
    "second cycle restores connectivity"
    [ "not_single_cycle" ]
    (kinds
       (Simnet.Invariants.check_all ~m:4 [| [| 1; 0; 3; 2 |]; [| 1; 2; 3; 0 |] |]))

(* ---------- Snapshots staleness distributions ---------- *)

let staleness_testable =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt (Simnet.Snapshots.staleness_to_string s))
    ( = )

let test_staleness_strings () =
  List.iter
    (fun (s, expected) ->
      match Simnet.Snapshots.staleness_of_string s with
      | Error e -> Alcotest.failf "%s: %s" s e
      | Ok d ->
          Alcotest.(check staleness_testable) ("parse " ^ s) expected d;
          Alcotest.(check string)
            ("round-trip " ^ s) s
            (Simnet.Snapshots.staleness_to_string d))
    [
      ("3", Simnet.Snapshots.Fixed 3);
      ("0", Simnet.Snapshots.Fixed 0);
      ("2.5", Simnet.Snapshots.Mixed 2.5);
      (* "3.0" stays Mixed: same expectation as Fixed 3 but drawn, and the
         spec string distinguishes them *)
      ("3.0", Simnet.Snapshots.Mixed 3.0);
      ("1..4", Simnet.Snapshots.Uniform (1, 4));
    ];
  List.iter
    (fun s ->
      match Simnet.Snapshots.staleness_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s)
    [ "-1"; "-0.5"; "nan"; "4..1"; "-2..3"; "1.5..2"; "x"; "" ]

let test_staleness_fixed_drawn_matches_create () =
  let a = Simnet.Snapshots.create ~lateness:3
  and b =
    Simnet.Snapshots.create_drawn ~staleness:(Simnet.Snapshots.Fixed 3)
      ~rng:(Prng.Stream.of_seed 1L)
  in
  for i = 0 to 9 do
    Simnet.Snapshots.push a i;
    Simnet.Snapshots.push b i;
    Alcotest.(check (option int))
      (Printf.sprintf "view agrees after push %d" i)
      (Simnet.Snapshots.view a) (Simnet.Snapshots.view b)
  done

let test_staleness_mixed_fractional () =
  let s =
    Simnet.Snapshots.create_drawn ~staleness:(Simnet.Snapshots.Mixed 0.25)
      ~rng:(Prng.Stream.of_seed 7L)
  in
  let pushes = 400 in
  let total = ref 0 in
  for i = 0 to pushes - 1 do
    Simnet.Snapshots.push s i;
    let l = Simnet.Snapshots.current_lateness s in
    Alcotest.(check bool) "draw in {0,1}" true (l = 0 || l = 1);
    total := !total + l
  done;
  let mean = float_of_int !total /. float_of_int pushes in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 0.25" mean)
    true
    (Float.abs (mean -. 0.25) < 0.08)

let test_staleness_uniform_bounds () =
  let s =
    Simnet.Snapshots.create_drawn ~staleness:(Simnet.Snapshots.Uniform (1, 4))
      ~rng:(Prng.Stream.of_seed 9L)
  in
  let hit = Array.make 5 false in
  for i = 0 to 199 do
    Simnet.Snapshots.push s i;
    let l = Simnet.Snapshots.current_lateness s in
    Alcotest.(check bool) "draw in [1,4]" true (l >= 1 && l <= 4);
    hit.(l) <- true
  done;
  for l = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "lateness %d drawn" l) true hit.(l)
  done

let test_staleness_drawn_deterministic () =
  let draws seed =
    let s =
      Simnet.Snapshots.create_drawn ~staleness:(Simnet.Snapshots.Mixed 1.5)
        ~rng:(Prng.Stream.of_seed seed)
    in
    List.init 50 (fun i ->
        Simnet.Snapshots.push s i;
        Simnet.Snapshots.current_lateness s)
  in
  Alcotest.(check (list int)) "same seed, same draws" (draws 3L) (draws 3L);
  Alcotest.(check bool)
    "different seed, different draws" true
    (draws 3L <> draws 4L)

(* ---------- properties ---------- *)

let qcheck_engine_conserves_messages =
  QCheck.Test.make ~name:"unblocked engine delivers exactly what is sent"
    ~count:100
    QCheck.(pair int64 (int_range 2 20))
    (fun (seed, n) ->
      let rng = Prng.Stream.of_seed seed in
      let eng = Simnet.Engine.create ~n ~msg_bits:(fun _ -> 1) () in
      let sent = ref 0 in
      Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
          for _ = 1 to Prng.Stream.int rng 5 do
            incr sent;
            Simnet.Engine.send eng ~src:me ~dst:(Prng.Stream.int rng n) "m"
          done);
      let received = ref 0 in
      Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox ->
          received := !received + List.length inbox);
      !sent = !received)

let qcheck_blocking_rule_reference_model =
  (* Fuzz the full blocking semantics: every node sends to every node in
     round 0 under a random blocked set; a message must be received in
     round 1 iff src and dst were non-blocked at round 0 and dst is
     non-blocked at round 1 — the exact rule of Section 1.1. *)
  QCheck.Test.make ~name:"blocking semantics match the reference predicate"
    ~count:100
    QCheck.(pair int64 (int_range 2 12))
    (fun (seed, n) ->
      let rng = Prng.Stream.of_seed seed in
      let b0 = Array.init n (fun _ -> Prng.Stream.bool rng) in
      let b1 = Array.init n (fun _ -> Prng.Stream.bool rng) in
      let eng = Simnet.Engine.create ~n ~msg_bits:(fun _ -> 1) () in
      Simnet.Engine.set_blocked eng (fun v -> b0.(v));
      Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
          for dst = 0 to n - 1 do
            Simnet.Engine.send eng ~src:me ~dst (Printf.sprintf "%d->%d" me dst)
          done);
      Simnet.Engine.set_blocked eng (fun v -> b1.(v));
      let received = Hashtbl.create 64 in
      Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
          List.iter (fun (src, _) -> Hashtbl.replace received (src, me) ()) inbox);
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let expected = (not b0.(src)) && (not b0.(dst)) && not b1.(dst) in
          if Hashtbl.mem received (src, dst) <> expected then ok := false
        done
      done;
      !ok)

let qcheck_collector_agrees_with_checker =
  (* check_cycle_all is empty exactly when check_cycle accepts, and its
     first element has the kind check_cycle stops on (out-of-range and
     collisions come before orbit analysis in both). *)
  QCheck.Test.make ~name:"all-violations collector refines check_cycle"
    ~count:500
    QCheck.(pair (int_range 1 24) (small_list (int_range (-2) 30)))
    (fun (size, noise) ->
      let succ = Array.init size (fun v -> (v + 1) mod size) in
      List.iteri
        (fun i x -> succ.(i mod size) <- x)
        noise;
      let all = Simnet.Invariants.check_cycle_all succ in
      match Simnet.Invariants.check_cycle succ with
      | Ok () -> all = []
      | Error v -> (
          match all with
          | [] -> false
          | first :: _ ->
              Simnet.Invariants.kind_of first = Simnet.Invariants.kind_of v))

let qcheck_snapshots_never_fresh =
  QCheck.Test.make ~name:"snapshots never reveal data fresher than lateness"
    ~count:200
    QCheck.(pair (int_range 0 10) (int_range 1 40))
    (fun (lateness, pushes) ->
      let s = Simnet.Snapshots.create ~lateness in
      let ok = ref true in
      for i = 0 to pushes - 1 do
        Simnet.Snapshots.push s i;
        match Simnet.Snapshots.view s with
        | None -> if i >= lateness then ok := false
        | Some v -> if i - v < lateness then ok := false
      done;
      !ok)

let () =
  Alcotest.run "simnet"
    [
      ( "msg-size",
        [
          Alcotest.test_case "id bits" `Quick test_id_bits;
          Alcotest.test_case "ids msg" `Quick test_ids_msg;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "rounds" `Quick test_metrics_rounds;
          Alcotest.test_case "max ever" `Quick test_metrics_max_ever;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery next round" `Quick
            test_engine_delivery_next_round;
          Alcotest.test_case "arrival order" `Quick test_engine_arrival_order;
          Alcotest.test_case "no blocking" `Quick test_blocking_none;
          Alcotest.test_case "sender blocked at send" `Quick
            test_blocking_sender_at_send;
          Alcotest.test_case "receiver blocked at send" `Quick
            test_blocking_receiver_at_send;
          Alcotest.test_case "receiver blocked at delivery" `Quick
            test_blocking_receiver_at_delivery;
          Alcotest.test_case "send from blocked dropped" `Quick
            test_send_from_blocked_dropped;
          Alcotest.test_case "blocking resets" `Quick
            test_blocking_resets_each_round;
          Alcotest.test_case "blocked nodes do not compute" `Quick
            test_blocked_node_does_not_compute;
          Alcotest.test_case "subset step" `Quick test_subset_step;
          Alcotest.test_case "metrics accounting" `Quick test_engine_metrics;
          Alcotest.test_case "dropped not charged" `Quick
            test_engine_metrics_not_charged_when_dropped;
          Alcotest.test_case "delivery-round block not charged" `Quick
            test_engine_metrics_not_charged_on_delivery_block;
          Alcotest.test_case "subset lost inbox not charged" `Quick
            test_subset_lost_inbox_not_charged;
          Alcotest.test_case "set_blocked after send raises" `Quick
            test_set_blocked_after_send_raises;
          Alcotest.test_case "metrics disabled" `Quick
            test_engine_disabled_metrics;
        ] );
      ( "trace",
        [
          Alcotest.test_case "engine JSONL round-trip" `Quick
            test_trace_jsonl_engine_roundtrip;
          Alcotest.test_case "event serialization round-trip" `Quick
            test_trace_event_serialization_roundtrip;
          Alcotest.test_case "null trace disabled" `Quick
            test_trace_null_is_disabled;
          Alcotest.test_case "binary round-trip" `Quick
            test_trace_binary_roundtrip;
          Alcotest.test_case "binary export = JSONL bytes" `Quick
            test_trace_binary_export_matches_jsonl;
          Alcotest.test_case "binary corrupt input fails loudly" `Quick
            test_trace_binary_corrupt;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "lateness" `Quick test_snapshots_lateness;
          Alcotest.test_case "0-late" `Quick test_snapshots_zero_late;
          Alcotest.test_case "view_at" `Quick test_snapshots_view_at;
          Alcotest.test_case "staleness strings" `Quick test_staleness_strings;
          Alcotest.test_case "drawn Fixed = create" `Quick
            test_staleness_fixed_drawn_matches_create;
          Alcotest.test_case "Mixed fractional draws" `Quick
            test_staleness_mixed_fractional;
          Alcotest.test_case "Uniform bounds" `Quick
            test_staleness_uniform_bounds;
          Alcotest.test_case "drawn lateness deterministic" `Quick
            test_staleness_drawn_deterministic;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean states collect nothing" `Quick
            test_collect_clean;
          Alcotest.test_case "all defects in node order" `Quick
            test_collect_all_defects_in_order;
          Alcotest.test_case "one violation per extra orbit" `Quick
            test_collect_one_violation_per_orbit;
          Alcotest.test_case "family size mismatch" `Quick
            test_collect_family_size_mismatch;
          Alcotest.test_case "union connectivity" `Quick
            test_collect_connectivity;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_engine_conserves_messages;
            qcheck_blocking_rule_reference_model;
            qcheck_collector_agrees_with_checker;
            qcheck_snapshots_never_fresh;
            qcheck_trace_binary_roundtrip;
            qcheck_trace_jsonl_float_roundtrip;
          ] );
    ]
