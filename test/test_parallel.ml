(* Tests for the fork-join helper used by the experiment harness. *)

let test_map_matches_sequential () =
  let xs = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results, same order" (Array.map f xs)
    (Parallel.map ~domains:4 f xs)

let test_map_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 42 |]
    (Parallel.map ~domains:8 (fun x -> x * 2) [| 21 |])

let test_map_list () =
  Alcotest.(check (list string)) "list version" [ "1"; "2"; "3" ]
    (Parallel.map_list ~domains:2 string_of_int [ 1; 2; 3 ])

let test_exception_propagates () =
  Alcotest.check_raises "task exception reaches the caller"
    (Invalid_argument "boom") (fun () ->
      ignore
        (Parallel.map ~domains:3
           (fun x -> if x = 7 then invalid_arg "boom" else x)
           (Array.init 20 (fun i -> i))))

(* A recursive raiser deep enough that its frames show up in the backtrace;
   [@inline never] keeps the name visible. *)
let[@inline never] rec deep_raiser n =
  if n = 0 then failwith "deep boom" else 1 + deep_raiser (n - 1)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_exception_keeps_backtrace () =
  (* The worker's backtrace must survive the cross-domain re-raise: the
     frames of the raising task (this file), not just the join loop's
     re-raise point.  Before raise_with_backtrace the trace was truncated
     to parallel.ml. *)
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  let bt =
    try
      ignore
        (Parallel.map ~domains:2
           (fun x -> if x = 3 then deep_raiser 40 else x)
           (Array.init 8 (fun i -> i)));
      Alcotest.fail "expected exception"
    with Failure _ -> Printexc.get_backtrace ()
  in
  Printexc.record_backtrace prev;
  Alcotest.(check bool)
    (Printf.sprintf "backtrace reaches the raising task's frames:\n%s" bt)
    true
    (contains_substring bt "test_parallel")

let test_deterministic_with_seeded_tasks () =
  (* The harness contract: tasks seeded by identity give bit-identical
     results at any parallelism. *)
  let task i =
    let rng = Prng.Stream.of_seed (Int64.of_int (1000 + i)) in
    Array.init 50 (fun _ -> Prng.Stream.int rng 1_000_000)
  in
  let xs = Array.init 32 (fun i -> i) in
  let seq = Parallel.map ~domains:1 task xs in
  let par = Parallel.map ~domains:4 task xs in
  Alcotest.(check bool) "identical across parallelism" true (seq = par)

let test_default_domains_positive () =
  Alcotest.(check bool) "at least one" true (Parallel.default_domains () >= 1)

let test_overlay_domains_override () =
  (* OVERLAY_DOMAINS pins the worker count; junk and non-positive values
     must fall back / clamp rather than disable the harness. *)
  let with_env v f =
    Unix.putenv "OVERLAY_DOMAINS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "OVERLAY_DOMAINS" "") f
  in
  with_env "3" (fun () ->
      Alcotest.(check int) "override honored" 3 (Parallel.default_domains ()));
  with_env " 7 " (fun () ->
      Alcotest.(check int) "whitespace trimmed" 7 (Parallel.default_domains ()));
  with_env "0" (fun () ->
      Alcotest.(check int) "clamped to >= 1" 1 (Parallel.default_domains ()));
  with_env "-4" (fun () ->
      Alcotest.(check int) "negative clamped" 1 (Parallel.default_domains ()));
  with_env "lots" (fun () ->
      Alcotest.(check bool) "junk falls back" true
        (Parallel.default_domains () >= 1))

let test_actually_concurrent () =
  (* Crude but effective: with 2 domains, two blocking tasks that each
     spin until the other has started can only finish if they really run
     concurrently. *)
  if Parallel.default_domains () >= 2 then begin
    let a_started = Atomic.make false and b_started = Atomic.make false in
    let spin_until flag mine =
      Atomic.set mine true;
      let tries = ref 0 in
      while (not (Atomic.get flag)) && !tries < 100_000_000 do
        incr tries
      done;
      Atomic.get flag
    in
    let results =
      Parallel.map ~domains:2
        (fun i ->
          if i = 0 then spin_until b_started a_started
          else spin_until a_started b_started)
        [| 0; 1 |]
    in
    Alcotest.(check (array bool)) "both saw each other" [| true; true |] results
  end

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "list version" `Quick test_map_list;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "exceptions keep backtraces" `Quick
            test_exception_keeps_backtrace;
          Alcotest.test_case "deterministic seeded tasks" `Quick
            test_deterministic_with_seeded_tasks;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
          Alcotest.test_case "OVERLAY_DOMAINS override" `Quick
            test_overlay_domains_override;
          Alcotest.test_case "actually concurrent" `Quick test_actually_concurrent;
        ] );
    ]
