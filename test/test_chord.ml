(* Tests for lib/chord: identifier-space algebra, ring construction and
   oracles, maintenance convergence from degraded state, lookup vs the
   brute-force oracle (with graceful degradation when the fingers are
   gone), the stale-view adversary's budget discipline, and the workload
   driver's chord backend (including the E19 shape on a small instance:
   reconfiguration holds goodput where Chord collapses). *)

let seed = 0xC402D_5EEDL

let rng () = Prng.Stream.of_seed seed

(* ---------- Id ---------- *)

(* dist-based membership oracle: x is in the cyclic interval (a, b] iff
   walking clockwise from a reaches x no later than b. *)
let oracle_in_oc ~m a b x =
  if a = b then true
  else
    let d = Chord.Id.dist ~m a x in
    d > 0 && d <= Chord.Id.dist ~m a b

let oracle_in_oo ~m a b x =
  if a = b then x <> a
  else
    let d = Chord.Id.dist ~m a x in
    d > 0 && d < Chord.Id.dist ~m a b

let id_triple_gen =
  let open QCheck.Gen in
  let* m = int_range 3 Chord.Id.max_bits in
  let* a = int_range 0 (Chord.Id.space m - 1) in
  let* b = int_range 0 (Chord.Id.space m - 1) in
  let* x = int_range 0 (Chord.Id.space m - 1) in
  return (m, a, b, x)

let qcheck_interval_membership =
  QCheck.Test.make ~name:"in_oc/in_oo match the dist oracle" ~count:500
    (QCheck.make id_triple_gen) (fun (m, a, b, x) ->
      Chord.Id.in_oc a b x = oracle_in_oc ~m a b x
      && Chord.Id.in_oo a b x = oracle_in_oo ~m a b x)

let qcheck_dist_antisymmetry =
  QCheck.Test.make ~name:"dist a b + dist b a = 2^m (a <> b)" ~count:500
    (QCheck.make id_triple_gen) (fun (m, a, b, _) ->
      let d1 = Chord.Id.dist ~m a b and d2 = Chord.Id.dist ~m b a in
      if a = b then d1 = 0 && d2 = 0 else d1 + d2 = Chord.Id.space m)

let test_finger_start () =
  let m = 10 in
  let id = 1000 in
  Alcotest.(check int) "wraps" ((1000 + 512) mod 1024)
    (Chord.Id.finger_start ~m id 9);
  (try
     ignore (Chord.Id.finger_start ~m id m);
     Alcotest.fail "finger index m accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "i=0" 1001 (Chord.Id.finger_start ~m id 0)

(* ---------- Ring ---------- *)

let make_ring ?fingers ?succs n =
  let ring = Chord.Ring.create ?fingers ?succs ~rng:(rng ()) ~n () in
  Chord.Ring.reset_ideal ring;
  ring

let test_ring_distinct_ids () =
  let n = 200 in
  let ring = make_ring n in
  let m = Chord.Ring.m ring in
  let seen = Hashtbl.create n in
  for v = 0 to n - 1 do
    let id = Chord.Ring.id ring v in
    Alcotest.(check bool) "id in space" true (id >= 0 && id < Chord.Id.space m);
    Alcotest.(check bool) "id distinct" false (Hashtbl.mem seen id);
    Hashtbl.replace seen id ()
  done

let test_reset_ideal_converged () =
  let ring = make_ring 64 in
  Alcotest.(check (float 1e-9)) "succ_ok" 1.0
    (Chord.Ring.succ_ok_fraction ring);
  Alcotest.(check bool) "connected" true (Chord.Ring.ring_connected ring);
  (* every finger slot of every node is oracle-exact *)
  for v = 0 to 63 do
    let node = Chord.Ring.node ring v in
    Array.iteri
      (fun i f ->
        let start =
          Chord.Id.finger_start ~m:(Chord.Ring.m ring) (Chord.Ring.id ring v) i
        in
        Alcotest.(check int)
          (Printf.sprintf "finger %d of %d" i v)
          (Chord.Ring.oracle_owner ring start)
          f)
      node.Chord.Ring.fingers
  done

let test_holds_replica_chain () =
  let n = 32 in
  let ring = make_ring ~succs:4 n in
  let kid = Chord.Ring.key_id ring 7 in
  let owner = Chord.Ring.oracle_owner ring kid in
  Alcotest.(check bool) "owner holds" true (Chord.Ring.holds ring owner ~key_id:kid);
  (* the r-th successor after the owner chain does not hold the key *)
  let v = ref owner in
  for _ = 1 to 4 do
    v := Chord.Ring.oracle_next ring !v
  done;
  Alcotest.(check bool) "past the chain" false
    (Chord.Ring.holds ring !v ~key_id:kid)

(* ---------- maintenance convergence ---------- *)

(* Kill a fifth of the membership on a converged ring, then let
   stabilize/fix_fingers run with no faults: the successor structure must
   become oracle-exact again and every finger of every live node must
   equal successor(n + 2^i) over the surviving membership. *)
let test_maintenance_reconverges () =
  let n = 64 in
  let ring = make_ring n in
  let rt = Simnet.Runtime.create ~n () in
  let net = Chord.Net.create ring ~rt () in
  let r = rng () in
  Array.iter
    (fun v -> Chord.Ring.set_alive ring v false)
    (Prng.Stream.sample_distinct r n ~k:(n / 5));
  let avail v = Chord.Ring.is_alive ring v in
  let period = 8 in
  let rounds = 2 * Chord.Ring.nf ring * period in
  for _ = 1 to rounds do
    Chord.Net.tick net ~avail
  done;
  Alcotest.(check (float 1e-9)) "succ_ok" 1.0
    (Chord.Ring.succ_ok_fraction ring);
  Alcotest.(check bool) "connected" true (Chord.Ring.ring_connected ring);
  let m = Chord.Ring.m ring in
  for v = 0 to n - 1 do
    if Chord.Ring.is_alive ring v then
      let node = Chord.Ring.node ring v in
      Array.iteri
        (fun i f ->
          let start = Chord.Id.finger_start ~m (Chord.Ring.id ring v) i in
          Alcotest.(check int)
            (Printf.sprintf "finger %d of %d" i v)
            (Chord.Ring.oracle_owner ring start)
            f)
        node.Chord.Ring.fingers
  done

let test_join_integrates () =
  let n = 48 in
  let ring = Chord.Ring.create ~rng:(rng ()) ~n () in
  (* node 0 is outside the initial converged membership *)
  Chord.Ring.set_alive ring 0 false;
  Chord.Ring.reset_ideal ring;
  Chord.Ring.set_alive ring 0 true;
  let rt = Simnet.Runtime.create ~n () in
  let net = Chord.Net.create ring ~rt () in
  let avail v = Chord.Ring.is_alive ring v in
  Alcotest.(check bool) "join ok" true (Chord.Net.join net ~avail ~via:1 0);
  let node = Chord.Ring.node ring 0 in
  Alcotest.(check int) "successor found" (Chord.Ring.oracle_next ring 0)
    node.Chord.Ring.succs.(0);
  (* a few maintenance periods integrate the joiner fully *)
  for _ = 1 to 4 * 8 do
    Chord.Net.tick net ~avail
  done;
  Alcotest.(check (float 1e-9)) "succ_ok" 1.0
    (Chord.Ring.succ_ok_fraction ring);
  Alcotest.(check bool) "connected" true (Chord.Ring.ring_connected ring)

(* ---------- lookup ---------- *)

let lookup_case_gen =
  let open QCheck.Gen in
  let* n = int_range 8 128 in
  let* key = int_range 0 4095 in
  let* entry_pick = int_range 0 (n - 1) in
  return (n, key, entry_pick)

let qcheck_lookup_matches_oracle =
  QCheck.Test.make ~name:"lookup on the ideal ring finds the oracle owner"
    ~count:100 (QCheck.make lookup_case_gen) (fun (n, key, entry_pick) ->
      let ring = make_ring n in
      let rt = Simnet.Runtime.create ~n () in
      let kid = Chord.Ring.key_id ring key in
      let o =
        Chord.Lookup.find ring ~rt
          ~avail:(fun _ -> true)
          ~from:entry_pick ~id:kid ()
      in
      let bound = Chord.Ring.m ring + Chord.Ring.r ring in
      o.Chord.Lookup.ok
      && o.Chord.Lookup.owner = Chord.Ring.oracle_owner ring kid
      && o.Chord.Lookup.hops <= bound
      && o.Chord.Lookup.timeouts = 0)

let test_lookup_degrades_to_succ_walk () =
  let n = 24 in
  let ring = make_ring n in
  (* wipe every finger table: routing must fall back to successor walking *)
  for v = 0 to n - 1 do
    Array.fill (Chord.Ring.node ring v).Chord.Ring.fingers 0
      (Chord.Ring.nf ring) (-1)
  done;
  let rt = Simnet.Runtime.create ~n () in
  let kid = Chord.Ring.key_id ring 3 in
  let o =
    Chord.Lookup.find ring ~rt ~avail:(fun _ -> true) ~from:0 ~id:kid ()
  in
  Alcotest.(check bool) "still succeeds" true o.Chord.Lookup.ok;
  Alcotest.(check int) "oracle owner" (Chord.Ring.oracle_owner ring kid)
    o.Chord.Lookup.owner

(* ---------- adversary ---------- *)

let test_adversary_budget () =
  let n = 100 in
  let ring = make_ring n in
  let hot_ids = Array.init 32 (fun k -> Chord.Ring.key_id ring k) in
  let adv =
    Chord.Adversary.create ~lateness:1 ~strategy:Chord.Adversary.Succ_kill
      ~frac:0.3 ~rng:(rng ()) ~ring ~hot_ids ()
  in
  Chord.Adversary.observe adv;
  Chord.Adversary.observe adv;
  let blocked = Array.make n false in
  Chord.Adversary.mark adv ~into:blocked;
  let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked in
  Alcotest.(check bool)
    (Printf.sprintf "budget respected (%d blocked)" count)
    true
    (count > 0 && count <= 30);
  (* the blocked set is drawn from the believed owner-plus-successor-list
     chains of the hottest keys: on the unchanged ideal ring the view is
     oracle-exact, so every blocked node sits within r + 1 chain steps of
     some hot key's owner (the owner and its full successor list; [holds]
     itself covers only the first r of those) *)
  let chain_member v =
    Array.exists
      (fun kid ->
        let w = ref (Chord.Ring.oracle_owner ring kid) in
        let hit = ref (!w = v) in
        for _ = 1 to Chord.Ring.r ring do
          w := Chord.Ring.oracle_next ring !w;
          if !w = v then hit := true
        done;
        !hit)
      hot_ids
  in
  Array.iteri
    (fun v b ->
      if b then
        Alcotest.(check bool)
          (Printf.sprintf "node %d aims at a replica chain" v)
          true (chain_member v))
    blocked

let test_adversary_alias () =
  (match Chord.Adversary.parse_strategy "group-kill" with
  | Ok Chord.Adversary.Succ_kill -> ()
  | _ -> Alcotest.fail "group-kill alias");
  match Chord.Adversary.parse_strategy "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted"

(* ---------- Sim determinism ---------- *)

let test_sim_deterministic () =
  let cfg =
    Chord.Sim.config ~rounds:24 ~lookups:4
      ~strategy:Chord.Adversary.Succ_kill ~frac:0.2 ~churn:(0.1, 8) ~n:128 ()
  in
  let r1 = Chord.Sim.run ~seed:7L cfg and r2 = Chord.Sim.run ~seed:7L cfg in
  Alcotest.(check int) "issued" r1.Chord.Sim.issued r2.Chord.Sim.issued;
  Alcotest.(check int) "ok" r1.Chord.Sim.ok r2.Chord.Sim.ok;
  Alcotest.(check int) "bits" r1.Chord.Sim.total_bits r2.Chord.Sim.total_bits;
  Alcotest.(check (float 1e-9)) "succ_ok" r1.Chord.Sim.succ_ok
    r2.Chord.Sim.succ_ok;
  let r3 = Chord.Sim.run ~seed:8L cfg in
  Alcotest.(check bool) "seed matters" true
    (r1.Chord.Sim.total_bits <> r3.Chord.Sim.total_bits)

(* ---------- workload driver backend ---------- *)

let small_spec =
  Workload.Spec.make ~clients:32 ~rounds:24 ~keys:128
    ~arrivals:(Workload.Spec.Open_loop { rate = 0.5 })
    ~mix:{ Workload.Spec.read = 0.7; write = 0.2; publish = 0.1 }
    ~popularity:(Workload.Spec.Zipf 1.1) ~slo:8 ~timeout:16 ()

let test_driver_chord_clean_serves_everything () =
  let cfg =
    Workload.Driver.config ~backend:(Workload.Driver.Chord Workload.Driver.chord_defaults)
      small_spec
  in
  let r = Workload.Driver.run ~seed:11L ~n:256 cfg in
  let t = r.Workload.Driver.total in
  Alcotest.(check bool) "issued > 0" true (t.Workload.Driver.issued > 0);
  Alcotest.(check int) "all served" t.Workload.Driver.issued
    t.Workload.Driver.ok;
  Alcotest.(check int) "accounting" t.Workload.Driver.issued
    (t.Workload.Driver.ok + t.Workload.Driver.timed_out
   + t.Workload.Driver.failed);
  Alcotest.(check int) "no supernodes" 0 r.Workload.Driver.max_group_load;
  Alcotest.(check bool) "bits accounted" true (r.Workload.Driver.total_bits > 0)

let test_driver_backends_same_requests () =
  (* same seed, same spec: the two backends must issue the identical
     request stream (admissions are backend-independent) *)
  let run backend =
    Workload.Driver.run ~seed:13L ~n:256
      (Workload.Driver.config ~backend small_spec)
  in
  let r_robust = run Workload.Driver.Robust in
  let r_chord =
    run (Workload.Driver.Chord Workload.Driver.chord_defaults)
  in
  List.iter2
    (fun (a : Workload.Driver.class_report) (b : Workload.Driver.class_report) ->
      Alcotest.(check string) "class" a.Workload.Driver.cls b.Workload.Driver.cls;
      Alcotest.(check int)
        (a.Workload.Driver.cls ^ " issued")
        a.Workload.Driver.issued b.Workload.Driver.issued)
    r_robust.Workload.Driver.classes r_chord.Workload.Driver.classes

let test_driver_e19_shape () =
  (* the headline: under the stale-view group-kill budget the
     reconfiguration backend keeps serving, Chord's goodput collapses *)
  let run backend =
    let cfg =
      Workload.Driver.config ~backend ~attack:Workload.Attack.Group_kill
        ~frac:0.25 ~retries:3 small_spec
    in
    let r = Workload.Driver.run ~seed:17L ~n:256 cfg in
    Workload.Driver.goodput r.Workload.Driver.total
  in
  let g_robust = run Workload.Driver.Robust in
  let g_chord = run (Workload.Driver.Chord Workload.Driver.chord_defaults) in
  Alcotest.(check bool)
    (Printf.sprintf "reconfig holds (%.3f)" g_robust)
    true (g_robust >= 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "chord collapses (%.3f)" g_chord)
    true (g_chord < 0.9);
  Alcotest.(check bool) "visible gap" true (g_robust -. g_chord >= 0.1)

let test_driver_chord_knob_validation () =
  (try
     ignore
       (Workload.Driver.config
          ~backend:
            (Workload.Driver.Chord
               { Workload.Driver.fingers = Some 0; succs = None; period = None })
          small_spec);
     Alcotest.fail "fingers=0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Workload.Driver.config
         ~backend:
           (Workload.Driver.Chord
              { Workload.Driver.fingers = None; succs = Some (-2); period = None })
         small_spec);
    Alcotest.fail "succs=-2 accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "chord"
    [
      ( "id",
        Alcotest.test_case "finger_start" `Quick test_finger_start
        :: List.map QCheck_alcotest.to_alcotest
             [ qcheck_interval_membership; qcheck_dist_antisymmetry ] );
      ( "ring",
        [
          Alcotest.test_case "distinct ids" `Quick test_ring_distinct_ids;
          Alcotest.test_case "reset_ideal converged" `Quick
            test_reset_ideal_converged;
          Alcotest.test_case "replica chain" `Quick test_holds_replica_chain;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "reconverges after failures" `Quick
            test_maintenance_reconverges;
          Alcotest.test_case "join integrates" `Quick test_join_integrates;
        ] );
      ( "lookup",
        Alcotest.test_case "degrades to successor walk" `Quick
          test_lookup_degrades_to_succ_walk
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_lookup_matches_oracle ]
      );
      ( "adversary",
        [
          Alcotest.test_case "budget discipline" `Quick test_adversary_budget;
          Alcotest.test_case "group-kill alias" `Quick test_adversary_alias;
        ] );
      ( "sim",
        [ Alcotest.test_case "deterministic" `Quick test_sim_deterministic ] );
      ( "driver",
        [
          Alcotest.test_case "clean chord serves everything" `Quick
            test_driver_chord_clean_serves_everything;
          Alcotest.test_case "backends see the same requests" `Quick
            test_driver_backends_same_requests;
          Alcotest.test_case "e19 shape: chord collapses" `Quick
            test_driver_e19_shape;
          Alcotest.test_case "knob validation" `Quick
            test_driver_chord_knob_validation;
        ] );
    ]
