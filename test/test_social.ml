(* Reddit-style social application: schedule determinism, session gating,
   per-class accounting, and the reconfiguration-vs-static claim on the
   social workload. *)

let seed = 11L

let app ?session () =
  Apps.Social.config ~users:32 ~topics:8 ~rounds:32 ~rate:0.3 ~fanout:2
    ?session ()

(* ---------- schedule generation ---------- *)

let test_schedule_domains_invariant () =
  let cfg = Apps.Social.config ~users:32 ~topics:8 ~rounds:32 ~rate:0.3 () in
  let s1 = Apps.Social.schedule ~domains:1 cfg ~seed in
  let s4 = Apps.Social.schedule ~domains:4 cfg ~seed in
  Alcotest.(check bool) "schedules identical" true (s1 = s4);
  Alcotest.(check bool)
    "sorted by arrival" true
    (Array.for_all2
       (fun a b -> a.Apps.Social.arrival <= b.Apps.Social.arrival)
       (Array.sub s1 0 (Array.length s1 - 1))
       (Array.sub s1 1 (Array.length s1 - 1)))

let test_schedule_shape () =
  let cfg =
    Apps.Social.config ~users:16 ~topics:4 ~rounds:24 ~rate:0.5 ~fanout:3 ()
  in
  let s = Apps.Social.schedule cfg ~seed in
  Alcotest.(check bool) "non-empty" true (Array.length s > 0);
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        "arrival in range" true
        (r.Apps.Social.arrival >= 0 && r.Apps.Social.arrival < 24);
      match (r.Apps.Social.cls, r.Apps.Social.ops) with
      | Apps.Social.Post, Apps.Social.Publish _ :: rest ->
          (* the repost fan-out rides in the same chain *)
          Alcotest.(check int) "fanout publishes" 3 (List.length rest)
      | Apps.Social.Post, _ -> Alcotest.fail "post without a publish chain"
      | (Apps.Social.Feed | Apps.Social.Comment | Apps.Social.Vote
        | Apps.Social.Dm), ops ->
          Alcotest.(check int) "single-op class" 1 (List.length ops))
    s

let test_session_gates_offline_users () =
  let session = (0.5, 8) in
  let cfg =
    Apps.Social.config ~users:32 ~topics:8 ~rounds:32 ~rate:0.5 ~session ()
  in
  let offline = Apps.Social.offline cfg ~seed in
  Alcotest.(check int) "epoch count" 4 (Array.length offline);
  Array.iter
    (fun set ->
      let off = Array.fold_left (fun a o -> if o then a + 1 else a) 0 set in
      Alcotest.(check int) "half the users offline" 16 off)
    offline;
  let s = Apps.Social.schedule cfg ~seed in
  Array.iter
    (fun r ->
      let e = r.Apps.Social.arrival / 8 in
      Alcotest.(check bool)
        "offline users issue nothing" false
        offline.(e).(r.Apps.Social.user))
    s

(* ---------- the runner ---------- *)

let run ?(mode = Workload.Driver.Reconfig) ?(attack = Workload.Attack.No_attack)
    ?(frac = 0.2) ?session ?(domains = 1) () =
  let cfg =
    Workload.Social.config ~mode ~period:8 ~attack ~frac ~domains (app ?session ())
  in
  Workload.Social.run ~seed ~n:256 cfg

let test_accounting_invariants () =
  let r = run ~session:(0.85, 8) () in
  Alcotest.(check int) "five classes" 5 (List.length r.Workload.Social.classes);
  List.iter2
    (fun cls (c : Workload.Driver.class_report) ->
      Alcotest.(check string) "class order" (Apps.Social.class_name cls)
        c.Workload.Driver.cls;
      Alcotest.(check int)
        "issued = ok + timeout + failed + pending(0)"
        c.Workload.Driver.issued
        (c.Workload.Driver.ok + c.Workload.Driver.timed_out
       + c.Workload.Driver.failed);
      Alcotest.(check int)
        "histogram holds the served requests" c.Workload.Driver.ok
        (Stats.Log_histogram.total c.Workload.Driver.hist))
    Apps.Social.classes r.Workload.Social.classes;
  let t = r.Workload.Social.total in
  Alcotest.(check int) "total issued"
    (List.fold_left
       (fun a (c : Workload.Driver.class_report) -> a + c.Workload.Driver.issued)
       0 r.Workload.Social.classes)
    t.Workload.Driver.issued

(* The merged overall histogram must not depend on the order the class
   shards are merged in: Log_histogram.merge is an exact cell-wise sum. *)
let test_class_hist_merge_invariance () =
  let r = run ~attack:(Workload.Attack.Group_kill) ~session:(0.85, 8) () in
  let hists =
    List.map
      (fun (c : Workload.Driver.class_report) -> c.Workload.Driver.hist)
      r.Workload.Social.classes
  in
  let merge_all hs =
    List.fold_left
      (fun acc h -> Stats.Log_histogram.merge acc h)
      (Stats.Log_histogram.create ())
      hs
  in
  let fwd = merge_all hists in
  let rev = merge_all (List.rev hists) in
  let rot =
    merge_all (match hists with [] -> [] | h :: rest -> rest @ [ h ])
  in
  Alcotest.(check bool) "forward = reverse" true
    (Stats.Log_histogram.equal fwd rev);
  Alcotest.(check bool) "forward = rotated" true
    (Stats.Log_histogram.equal fwd rot);
  Alcotest.(check bool) "matches the report's total" true
    (Stats.Log_histogram.equal fwd r.Workload.Social.total.Workload.Driver.hist)

let reports_equal (a : Workload.Social.report) (b : Workload.Social.report) =
  List.for_all2
    (fun (x : Workload.Driver.class_report) (y : Workload.Driver.class_report) ->
      x.Workload.Driver.issued = y.Workload.Driver.issued
      && x.Workload.Driver.ok = y.Workload.Driver.ok
      && x.Workload.Driver.slo_miss = y.Workload.Driver.slo_miss
      && x.Workload.Driver.timed_out = y.Workload.Driver.timed_out
      && x.Workload.Driver.failed = y.Workload.Driver.failed
      && x.Workload.Driver.max_hops = y.Workload.Driver.max_hops
      && Stats.Log_histogram.equal x.Workload.Driver.hist y.Workload.Driver.hist)
    a.Workload.Social.classes b.Workload.Social.classes
  && a.Workload.Social.hop_msgs = b.Workload.Social.hop_msgs
  && a.Workload.Social.total_bits = b.Workload.Social.total_bits
  && a.Workload.Social.max_group_load = b.Workload.Social.max_group_load

let test_domains_invariant () =
  let a =
    run ~attack:Workload.Attack.Group_kill ~session:(0.85, 8) ~domains:1 ()
  in
  let b =
    run ~attack:Workload.Attack.Group_kill ~session:(0.85, 8) ~domains:4 ()
  in
  Alcotest.(check bool) "domains 1 = domains 4" true (reports_equal a b)

(* Theorem 8 on the social workload: reconfiguration holds every class's
   SLO under a 20% hot-key group-kill; the static ablation loses classes. *)
let test_reconfig_holds_static_loses () =
  let slo_frac (c : Workload.Driver.class_report) =
    if c.Workload.Driver.issued = 0 then 1.0
    else
      float_of_int (c.Workload.Driver.ok - c.Workload.Driver.slo_miss)
      /. float_of_int c.Workload.Driver.issued
  in
  let classes_ok r =
    List.length
      (List.filter (fun c -> slo_frac c >= 0.9) r.Workload.Social.classes)
  in
  let reconfig =
    run ~mode:Workload.Driver.Reconfig ~attack:Workload.Attack.Group_kill ()
  in
  let static =
    run ~mode:Workload.Driver.Static ~attack:Workload.Attack.Group_kill ()
  in
  Alcotest.(check int) "reconfig holds all five" 5 (classes_ok reconfig);
  Alcotest.(check bool)
    (Printf.sprintf "static loses a class (%d ok)" (classes_ok static))
    true
    (classes_ok static < 5)

(* ---------- config validation and scenario keys ---------- *)

let test_config_validation () =
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.failf "%s accepted" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "users=0" (fun () -> Apps.Social.config ~users:0 ());
  expect_invalid "fanout=-1" (fun () -> Apps.Social.config ~fanout:(-1) ());
  expect_invalid "zipf=0" (fun () -> Apps.Social.config ~zipf:0.0 ());
  expect_invalid "session online=0" (fun () ->
      Apps.Social.config ~session:(0.0, 8) ());
  expect_invalid "session epoch=0" (fun () ->
      Apps.Social.config ~session:(0.5, 0) ())

let test_scenario_social_keys () =
  match Simnet.Scenario.parse "app=social;topics=24;fanout=3;session=0.8:6" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok sc ->
      Alcotest.(check (option string)) "app" (Some "social")
        sc.Simnet.Scenario.app;
      Alcotest.(check (option int)) "topics" (Some 24)
        sc.Simnet.Scenario.topics;
      Alcotest.(check (option int)) "fanout" (Some 3)
        sc.Simnet.Scenario.fanout;
      Alcotest.(check bool) "session" true
        (sc.Simnet.Scenario.session = Some (0.8, 6))

let test_scenario_unknown_key_suggestion () =
  (match Simnet.Scenario.parse "topic=8" with
  | Ok _ -> Alcotest.fail "typo accepted"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "suggests topics (%s)" e)
        true
        (let needle = "did you mean topics?" in
         let rec contains i =
           i + String.length needle <= String.length e
           && (String.sub e i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0));
  match Simnet.Scenario.parse "zzqq=8" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e ->
      Alcotest.(check bool) "no far-fetched suggestion" false
        (let needle = "did you mean" in
         let rec contains i =
           i + String.length needle <= String.length e
           && (String.sub e i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0)

let () =
  Alcotest.run "social"
    [
      ( "schedule",
        [
          Alcotest.test_case "domains invariant" `Quick
            test_schedule_domains_invariant;
          Alcotest.test_case "shape and fan-out" `Quick test_schedule_shape;
          Alcotest.test_case "session gates offline users" `Quick
            test_session_gates_offline_users;
        ] );
      ( "runner",
        [
          Alcotest.test_case "accounting invariants" `Quick
            test_accounting_invariants;
          Alcotest.test_case "class-histogram merge invariance" `Quick
            test_class_hist_merge_invariance;
          Alcotest.test_case "domain-count independent" `Quick
            test_domains_invariant;
          Alcotest.test_case "reconfig holds, static loses (Thm 8)" `Quick
            test_reconfig_holds_static_loses;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "scenario keys" `Quick test_scenario_social_keys;
          Alcotest.test_case "unknown-key suggestion" `Quick
            test_scenario_unknown_key_suggestion;
        ] );
    ]
