(* Tests for the sharded struct-of-arrays engine core (Simnet.Engine).

   The load-bearing properties: the shard width and the worker-domain
   count are pure tuning knobs — same-seed runs produce byte-identical
   binary traces and identical loss accounting at any (shard_bits,
   domains), with drop/duplicate/delay/crash plans active; the flat
   delivery path delivers exactly the list path's inboxes; delivered
   message payloads are not retained by the engine's buffers; and the
   delay/inbox planes at n = 10^6 are allocated lazily. *)

let msg_bits (_ : string) = 16
let int_bits (_ : int) = 16

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* A deterministic compute-driven workload: every node sends to a spread
   of neighbours derived from (round, me), with a rotating blocked set,
   and the transcript of every delivered (round, me, src, msg) is
   appended to [log] when provided. *)
let run_workload ?faults ?(trace = Simnet.Trace.null) ?domains ?shard_bits
    ?log ~n ~rounds () =
  let eng =
    Simnet.Engine.create ~trace ?faults ?domains ?shard_bits ~n ~msg_bits ()
  in
  for r = 0 to rounds - 1 do
    Simnet.Engine.set_blocked eng (fun v -> (r + v) mod 7 = 0);
    Simnet.Engine.deliver_and_step eng (fun ~round ~me ~inbox ->
        (match log with
        | Some log ->
            List.iter
              (fun (src, msg) -> log := (round, me, src, msg) :: !log)
              inbox
        | None -> ());
        for k = 1 to 3 do
          Simnet.Engine.send eng ~src:me
            ~dst:((me + (k * (1 + (round mod 5)))) mod n)
            "m"
        done)
  done;
  eng

(* One traced binary run; returns (bytes, losses, delivered transcript). *)
let traced_run ?faults ?domains ?shard_bits ~n ~rounds () =
  let path = Filename.temp_file "sharded" ".bin" in
  let trace = Simnet.Trace.open_file ~format:Simnet.Trace.Binary path in
  let log = ref [] in
  let eng = run_workload ?faults ~trace ?domains ?shard_bits ~log ~n ~rounds () in
  Simnet.Trace.close trace;
  let bytes = read_file path in
  Sys.remove path;
  (bytes, Simnet.Engine.losses eng, List.rev !log)

(* ---------- shard/domain invariance ---------- *)

let chaos_plan =
  Simnet.Faults.make ~drop:0.1 ~duplicate:0.05 ~delay_p:0.2 ~delay_max:2
    ~crash:2 ~crash_round:3 ~recover_after:4 ()

let test_shard_bits_invariance () =
  (* shard_bits=14 puts all of n=96 in one shard (the unsharded layout);
     shard_bits=4 splits it into 6 shards.  Everything must agree. *)
  let b1, l1, t1 = traced_run ~faults:chaos_plan ~shard_bits:14 ~n:96 ~rounds:12 () in
  let b4, l4, t4 = traced_run ~faults:chaos_plan ~shard_bits:4 ~n:96 ~rounds:12 () in
  Alcotest.(check bool) "trace bytes identical" true (b1 = b4);
  Alcotest.(check bool) "losses identical" true (l1 = l4);
  Alcotest.(check bool) "transcripts identical" true (t1 = t4)

let qcheck_domains_and_shards_invariant =
  let plan_gen =
    let open QCheck.Gen in
    let* drop = float_bound_inclusive 0.2 in
    let* duplicate = float_bound_inclusive 0.1 in
    let* delay_p = float_bound_inclusive 0.2 in
    let* delay_max = int_range 1 3 in
    let* crash = int_range 0 2 in
    let* seed = int_range 0 100_000 in
    return
      (Simnet.Faults.make ~drop ~duplicate ~delay_p ~delay_max ~crash
         ~crash_round:2 ~recover_after:3
         ~seed:(Int64.of_int seed) ())
  in
  let case_gen =
    let open QCheck.Gen in
    let* plan = plan_gen in
    let* n = int_range 17 120 in
    let* rounds = int_range 2 10 in
    return (plan, n, rounds)
  in
  QCheck.Test.make
    ~name:"sharded engine: (shard_bits, domains) never change a faulted run"
    ~count:25 (QCheck.make case_gen) (fun (plan, n, rounds) ->
      (* Reference: the unsharded layout (one shard, one domain). *)
      let ref_bytes, ref_losses, ref_log =
        traced_run ~faults:plan ~shard_bits:14 ~domains:1 ~n ~rounds ()
      in
      List.for_all
        (fun domains ->
          let b, l, t =
            traced_run ~faults:plan ~shard_bits:4 ~domains ~n ~rounds ()
          in
          b = ref_bytes && l = ref_losses && t = ref_log)
        [ 1; 2; 4 ])

(* ---------- inbox order contract ---------- *)

let test_cross_shard_inbox_order () =
  (* Manual out-of-compute sends from two different sender shards, issued
     in descending-shard order.  The contract says dst receives them
     grouped by sender shard ascending, send order within. *)
  let eng = Simnet.Engine.create ~shard_bits:4 ~n:48 ~msg_bits:int_bits () in
  Simnet.Engine.send eng ~src:40 ~dst:0 1;
  Simnet.Engine.send eng ~src:5 ~dst:0 2;
  Simnet.Engine.send eng ~src:40 ~dst:0 3;
  Simnet.Engine.send eng ~src:6 ~dst:0 4;
  let got = ref [] in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      if me = 0 then got := inbox);
  Alcotest.(check (list (pair int int)))
    "sender-shard-major order"
    [ (5, 2); (6, 4); (40, 1); (40, 3) ]
    !got

(* ---------- flat path ---------- *)

let flat_transcript ~domains ~n ~rounds =
  let eng =
    Simnet.Engine.create ~metrics:false ~shard_bits:4 ~domains ~n
      ~msg_bits:int_bits ()
  in
  (* Per-node logs: with domains > 1 compute runs shard-parallel, so the
     callback must only touch me-local state. *)
  let logs = Array.make n [] in
  for r = 0 to rounds - 1 do
    Simnet.Engine.set_blocked eng (fun v -> (r + v) mod 7 = 0);
    Simnet.Engine.deliver_and_step_flat eng (fun ~round ~me ~inbox ->
        Simnet.Engine.slice_iter
          (fun ~src msg -> logs.(me) <- (round, src, msg) :: logs.(me))
          inbox;
        for k = 1 to 3 do
          Simnet.Engine.send eng ~src:me ~dst:((me + (k * 7)) mod n) (me + (r * n))
        done)
  done;
  Array.map List.rev logs

let list_transcript ~n ~rounds =
  let eng =
    Simnet.Engine.create ~metrics:false ~shard_bits:4 ~n ~msg_bits:int_bits ()
  in
  let logs = Array.make n [] in
  for r = 0 to rounds - 1 do
    Simnet.Engine.set_blocked eng (fun v -> (r + v) mod 7 = 0);
    Simnet.Engine.deliver_and_step eng (fun ~round ~me ~inbox ->
        List.iter
          (fun (src, msg) -> logs.(me) <- (round, src, msg) :: logs.(me))
          inbox;
        for k = 1 to 3 do
          Simnet.Engine.send eng ~src:me ~dst:((me + (k * 7)) mod n) (me + (r * n))
        done)
  done;
  Array.map List.rev logs

let test_flat_matches_list () =
  let flat = flat_transcript ~domains:1 ~n:100 ~rounds:8 in
  let list = list_transcript ~n:100 ~rounds:8 in
  Alcotest.(check bool) "flat path delivers the list path's inboxes" true
    (flat = list)

let test_flat_parallel_deterministic () =
  (* Enough staged traffic to clear the parallel threshold (2^15), so
     domains=4 really runs the merge and compute shard-parallel. *)
  let n = 4096 and rounds = 3 in
  let run domains =
    let eng =
      Simnet.Engine.create ~metrics:false ~shard_bits:8 ~domains ~n
        ~msg_bits:int_bits ()
    in
    let acc = Array.make n 0 in
    for r = 0 to rounds - 1 do
      Simnet.Engine.deliver_and_step_flat eng (fun ~round:_ ~me ~inbox ->
          Simnet.Engine.slice_iter (fun ~src msg -> acc.(me) <- acc.(me) + src + msg) inbox;
          for k = 1 to 10 do
            Simnet.Engine.send eng ~src:me ~dst:((me + (k * 131)) mod n) (me + r)
          done)
    done;
    acc
  in
  Alcotest.(check bool) "domains=4 matches domains=1" true (run 1 = run 4)

let test_flat_rejects_faults_and_metrics () =
  let faulted =
    Simnet.Engine.create ~metrics:false ~faults:chaos_plan ~n:8
      ~msg_bits:int_bits ()
  in
  Alcotest.check_raises "fault plans need the list path"
    (Invalid_argument
       "Engine.deliver_and_step_flat: fault plans need the list delivery path")
    (fun () ->
      Simnet.Engine.deliver_and_step_flat faulted (fun ~round:_ ~me:_ ~inbox:_ ->
          ()));
  let metered = Simnet.Engine.create ~n:8 ~msg_bits:int_bits () in
  Alcotest.check_raises "metrics need the list path"
    (Invalid_argument "Engine.deliver_and_step_flat: requires ~metrics:false")
    (fun () ->
      Simnet.Engine.deliver_and_step_flat metered (fun ~round:_ ~me:_ ~inbox:_ ->
          ()))

(* ---------- payload retention ---------- *)

(* Plant a weakly-held payload in a fresh stack frame so no local binding
   keeps it alive after the send. *)
let[@inline never] plant_list eng w =
  let payload = Bytes.make 16 'x' in
  Weak.set w 0 (Some payload);
  Simnet.Engine.send eng ~src:0 ~dst:1 payload

let test_no_stale_retention_list_path () =
  let eng =
    Simnet.Engine.create ~metrics:false ~n:8 ~msg_bits:(fun (_ : bytes) -> 8) ()
  in
  let w = Weak.create 1 in
  plant_list eng w;
  (* Deliver it (without keeping a reference) and finish the round. *)
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox -> ignore inbox);
  Gc.full_major ();
  Alcotest.(check bool) "payload collected after delivery" true
    (Weak.get w 0 = None)

let test_no_stale_retention_flat_path () =
  let eng =
    Simnet.Engine.create ~metrics:false ~n:8 ~msg_bits:(fun (_ : bytes) -> 8) ()
  in
  let w = Weak.create 1 in
  plant_list eng w;
  Simnet.Engine.deliver_and_step_flat eng (fun ~round:_ ~me:_ ~inbox ->
      ignore (Simnet.Engine.slice_len inbox));
  Gc.full_major ();
  Alcotest.(check bool) "payload collected after flat delivery" true
    (Weak.get w 0 = None)

(* ---------- lazy allocation at scale ---------- *)

let test_million_node_create_is_lean () =
  (* A fault-free million-node engine must not eagerly allocate the
     per-node delay and inbox arrays (8 MB each at n = 2^20): creation
     stays under 4 MB of OCaml heap allocation, and a flat round on
     sparse traffic does not change that. *)
  let n = 1 lsl 20 in
  let before = Gc.allocated_bytes () in
  let eng = Simnet.Engine.create ~metrics:false ~n ~msg_bits:int_bits () in
  let created = Gc.allocated_bytes () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "create allocates < 4MB (got %.0f)" created)
    true
    (created < 4.0 *. 1024.0 *. 1024.0);
  Simnet.Engine.send eng ~src:0 ~dst:(n - 1) 7;
  let got = ref 0 in
  Simnet.Engine.deliver_and_step_flat eng (fun ~round:_ ~me:_ ~inbox ->
      got := !got + Simnet.Engine.slice_len inbox);
  let total = Gc.allocated_bytes () -. before in
  Alcotest.(check int) "message arrived" 1 !got;
  Alcotest.(check bool)
    (Printf.sprintf "flat round stays < 4MB (got %.0f)" total)
    true
    (total < 4.0 *. 1024.0 *. 1024.0)

(* ---------- runtime hosting ---------- *)

let test_runtime_engine_losses_fold () =
  let plan = Simnet.Faults.make ~drop:1.0 () in
  let rt = Simnet.Runtime.create ~faults:plan ~n:8 () in
  let eng = Simnet.Runtime.engine ~metrics:false rt ~msg_bits () in
  for _ = 1 to 2 do
    ignore (Simnet.Runtime.tick rt);
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
        Alcotest.(check (list (pair int string))) "all dropped" [] inbox;
        Simnet.Engine.send eng ~src:me ~dst:((me + 1) mod 8) "m")
  done;
  (* 8 sends per round; round 1's batch is dropped at round 2's delivery,
     round 2's batch is still staged. *)
  let el = Simnet.Engine.losses eng in
  Alcotest.(check int) "engine dropped" 8 el.Simnet.Engine.dropped;
  let rl = Simnet.Runtime.losses rt in
  Alcotest.(check int) "runtime folds engine drops" 8 rl.Simnet.Runtime.dropped;
  (* A leg roll of the shared handle also lands in the same accounting. *)
  Alcotest.(check bool) "leg dropped too" false (Simnet.Runtime.leg rt ());
  Alcotest.(check int) "leg + engine drops" 9
    (Simnet.Runtime.losses rt).Simnet.Runtime.dropped

let test_runtime_engine_subset_lost_in_epoch () =
  let rt = Simnet.Runtime.create ~n:8 () in
  let eng = Simnet.Runtime.engine ~metrics:false rt ~msg_bits () in
  let report =
    Simnet.Runtime.run_epoch rt (fun rt ->
        Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
            Simnet.Engine.send eng ~src:me ~dst:((me + 1) mod 8) "m");
        (* Nobody computes next round: all 8 queued messages are lost. *)
        Simnet.Engine.deliver_and_step_subset eng ~nodes:[||]
          (fun ~round:_ ~me:_ ~inbox:_ -> ());
        ignore rt;
        ((), 2))
  in
  Alcotest.(check int) "epoch subset_lost" 8
    report.Simnet.Runtime.epoch_losses.Simnet.Runtime.subset_lost;
  Alcotest.(check int) "total subset_lost" 8
    (Simnet.Runtime.losses rt).Simnet.Runtime.subset_lost

let test_runtime_hosted_engine_does_not_tick () =
  (* The crash schedule fires on the runtime's tick, not inside the hosted
     engine: before any tick nobody is crashed, after tick the schedule's
     victims are, and the hosted engine observes the shared handle. *)
  let plan = Simnet.Faults.make ~crash:2 ~crash_round:0 () in
  let rt = Simnet.Runtime.create ~faults:plan ~n:16 () in
  let eng = Simnet.Runtime.engine ~metrics:false rt ~msg_bits () in
  let crashed_count () =
    let c = ref 0 in
    for v = 0 to 15 do
      if Simnet.Engine.is_crashed eng v then incr c
    done;
    !c
  in
  (* An engine round before any runtime tick must not apply transitions. *)
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ -> ());
  Alcotest.(check int) "no crashes before the host ticks" 0 (crashed_count ());
  (* Victim [i] crashes at crash_round + i: one per tick here. *)
  ignore (Simnet.Runtime.tick rt);
  Alcotest.(check int) "first victim applied by the host" 1 (crashed_count ());
  Simnet.Runtime.advance rt ~rounds:1;
  ignore (Simnet.Runtime.tick rt);
  Alcotest.(check int) "second victim applied by the host" 2 (crashed_count ())

let test_runtime_domains_inherited () =
  let rt = Simnet.Runtime.create ~domains:3 ~n:8 () in
  Alcotest.(check int) "runtime domains" 3 (Simnet.Runtime.domains rt);
  let eng = Simnet.Runtime.engine ~metrics:false rt ~msg_bits () in
  Alcotest.(check int) "hosted engine inherits" 3 (Simnet.Engine.domains eng)

let () =
  Alcotest.run "simnet_sharded"
    [
      ( "invariance",
        [
          Alcotest.test_case "shard_bits never change a faulted run" `Quick
            test_shard_bits_invariance;
          Alcotest.test_case "cross-shard manual sends follow the contract"
            `Quick test_cross_shard_inbox_order;
        ] );
      ( "flat",
        [
          Alcotest.test_case "flat matches list" `Quick test_flat_matches_list;
          Alcotest.test_case "parallel flat is deterministic" `Quick
            test_flat_parallel_deterministic;
          Alcotest.test_case "flat rejects faults/metrics" `Quick
            test_flat_rejects_faults_and_metrics;
        ] );
      ( "memory",
        [
          Alcotest.test_case "no stale retention (list)" `Quick
            test_no_stale_retention_list_path;
          Alcotest.test_case "no stale retention (flat)" `Quick
            test_no_stale_retention_flat_path;
          Alcotest.test_case "million-node create is lean" `Quick
            test_million_node_create_is_lean;
        ] );
      ( "hosting",
        [
          Alcotest.test_case "losses fold through the runtime" `Quick
            test_runtime_engine_losses_fold;
          Alcotest.test_case "subset_lost in epoch accounting" `Quick
            test_runtime_engine_subset_lost_in_epoch;
          Alcotest.test_case "hosted engine defers ticking" `Quick
            test_runtime_hosted_engine_does_not_tick;
          Alcotest.test_case "domains inherited" `Quick
            test_runtime_domains_inherited;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_domains_and_shards_invariant ] );
    ]
