(* Corruption generator guarantees: purity in (seed, class, severity),
   advertised-invariant violation, and spec-string round-trips. *)

let violation_kinds ~m succs =
  List.map Simnet.Invariants.kind_of (Simnet.Invariants.check_all ~m succs)

(* A valid family of [k] Hamilton cycles over [m] nodes, each a random
   cyclic order. *)
let cycle_family rng ~k ~m =
  Array.init k (fun _ ->
      let order = Prng.Stream.permutation rng m in
      let succ = Array.make m 0 in
      for i = 0 to m - 1 do
        succ.(order.(i)) <- order.((i + 1) mod m)
      done;
      succ)

let cls_gen = QCheck.Gen.oneofl Simnet.Corruption.all

let spec_gen =
  let open QCheck.Gen in
  let* cls = cls_gen in
  let* severity = float_range 0.01 1.0 in
  let* seed = map Int64.of_int (int_range (-1000000) 1000000) in
  return (Simnet.Corruption.make ~severity ~seed cls)

let family_and_spec_gen =
  let open QCheck.Gen in
  let* spec = spec_gen in
  let* m = int_range 4 96 in
  let* k = int_range 1 3 in
  let* fam_seed = map Int64.of_int (int_range 0 1000000) in
  let rng = Prng.Stream.of_seed fam_seed in
  return (spec, cycle_family rng ~k ~m, m)

let pp_case (spec, succs, m) =
  Printf.sprintf "spec=%s m=%d k=%d"
    (Simnet.Corruption.to_spec spec)
    m (Array.length succs)

let qcheck_pure_function =
  QCheck.Test.make ~name:"apply is a pure function of (seed,class,severity)"
    ~count:200
    (QCheck.make ~print:pp_case family_and_spec_gen)
    (fun (spec, succs, _m) ->
      let a = Simnet.Corruption.apply spec succs in
      let b = Simnet.Corruption.apply spec succs in
      a = b && succs <> a)

let qcheck_advertised_violation =
  QCheck.Test.make
    ~name:"apply violates the advertised invariant of its class" ~count:500
    (QCheck.make ~print:pp_case family_and_spec_gen)
    (fun (spec, succs, m) ->
      let corrupted = Simnet.Corruption.apply spec succs in
      let kinds = violation_kinds ~m corrupted in
      let want = Simnet.Corruption.advertised spec.Simnet.Corruption.cls in
      if not (List.mem want kinds) then
        QCheck.Test.fail_reportf "expected %s among [%s]" want
          (String.concat "; " kinds)
      else true)

let qcheck_spec_roundtrip =
  QCheck.Test.make ~name:"parse_spec (to_spec s) = s" ~count:500
    (QCheck.make
       ~print:(fun s -> Simnet.Corruption.to_spec s)
       spec_gen)
    (fun spec ->
      match Simnet.Corruption.parse_spec (Simnet.Corruption.to_spec spec) with
      | Ok spec' -> spec' = spec
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_input_untouched () =
  let rng = Prng.Stream.of_seed 11L in
  let succs = cycle_family rng ~k:2 ~m:16 in
  let before = Array.map Array.copy succs in
  List.iter
    (fun cls ->
      ignore (Simnet.Corruption.apply (Simnet.Corruption.make cls) succs))
    Simnet.Corruption.all;
  Alcotest.(check bool) "input family unmodified" true (succs = before)

let test_stream_keying () =
  let base = Simnet.Corruption.make ~severity:0.25 ~seed:7L Branch in
  let first t = Prng.Stream.bits64 (Simnet.Corruption.stream t) in
  let b = first base in
  Alcotest.(check bool)
    "seed changes stream" true
    (b <> first { base with seed = 8L });
  Alcotest.(check bool)
    "class changes stream" true
    (b <> first { base with cls = Split });
  Alcotest.(check bool)
    "severity changes stream" true
    (b <> first { base with severity = 0.5 })

let test_parse_errors () =
  let fails s =
    match Simnet.Corruption.parse_spec s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to be rejected" s
  in
  fails "";
  fails "severity=0.5";
  fails "class=bogus";
  fails "class=branch,severity=0";
  fails "class=branch,severity=1.5";
  fails "class=branch,seed=x";
  fails "class=branch,frob=1";
  fails "branch";
  match Simnet.Corruption.parse_spec "class=stale, severity=0.5 ,seed=-3" with
  | Ok { cls = Stale_pointer; severity = 0.5; seed = -3L } -> ()
  | Ok s -> Alcotest.failf "wrong parse: %s" (Simnet.Corruption.to_spec s)
  | Error e -> Alcotest.failf "parse: %s" e

let test_apply_rejects_bad_input () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let spec = Simnet.Corruption.make Branch in
  raises (fun () -> Simnet.Corruption.apply spec [||]);
  raises (fun () -> Simnet.Corruption.apply spec [| [| 1; 2; 0 |] |]);
  raises (fun () ->
      Simnet.Corruption.apply spec [| [| 1; 0; 3; 2 |] |] (* two 2-cycles *));
  raises (fun () ->
      Simnet.Corruption.apply spec [| [| 1; 2; 3; 0 |]; [| 1; 2; 0 |] |])

let test_severity_scales () =
  let rng = Prng.Stream.of_seed 3L in
  let succs = cycle_family rng ~k:1 ~m:64 in
  let broken severity =
    let spec = Simnet.Corruption.make ~severity ~seed:5L Out_of_range in
    let out = Simnet.Corruption.apply spec succs in
    Array.fold_left
      (fun acc s -> if s < 0 || s >= 64 then acc + 1 else acc)
      0 out.(0)
  in
  Alcotest.(check int) "severity 1/64 breaks one pointer" 1 (broken 0.015);
  Alcotest.(check int) "severity 0.5 breaks half" 32 (broken 0.5);
  Alcotest.(check int) "severity 1.0 capped at m-2" 62 (broken 1.0)

let () =
  Alcotest.run "simnet_corruption"
    [
      ( "unit",
        [
          Alcotest.test_case "input untouched" `Quick test_input_untouched;
          Alcotest.test_case "stream keying" `Quick test_stream_keying;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "apply rejects bad input" `Quick
            test_apply_rejects_bad_input;
          Alcotest.test_case "severity scales damage" `Quick
            test_severity_scales;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_pure_function;
            qcheck_advertised_violation;
            qcheck_spec_roundtrip;
          ] );
    ]
