(* Tests for the deterministic fault-injection layer (Simnet.Faults), its
   engine integration, and the Simnet.Invariants checks.

   The load-bearing properties: same seed + same plan reproduce a traced
   run byte for byte; a plan that can never fire leaves every metric
   identical to a fault-free engine; every loss is accounted in
   Engine.losses; invariant violations are typed, never silent. *)

let msg_bits (_ : string) = 16

(* A small deterministic workload: [rounds] rounds on [n] nodes, every node
   sending to its next three neighbours each round, with a rotating blocked
   set thrown in so faults compose with the Section 1.1 rule. *)
let run_workload ?faults ?(trace = Simnet.Trace.null) ~n ~rounds () =
  let eng = Simnet.Engine.create ~trace ?faults ~n ~msg_bits () in
  let received = ref 0 in
  for r = 0 to rounds - 1 do
    Simnet.Engine.set_blocked eng (fun v -> (r + v) mod 5 = 0);
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
        received := !received + List.length inbox;
        for k = 1 to 3 do
          Simnet.Engine.send eng ~src:me ~dst:((me + k) mod n) "m"
        done)
  done;
  (eng, !received)

let value_testable =
  let pp fmt = function
    | Simnet.Trace.Int i -> Format.fprintf fmt "Int %d" i
    | Simnet.Trace.Float f -> Format.fprintf fmt "Float %g" f
    | Simnet.Trace.Bool b -> Format.fprintf fmt "Bool %b" b
    | Simnet.Trace.String s -> Format.fprintf fmt "String %S" s
  in
  Alcotest.testable pp ( = )

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ---------- determinism ---------- *)

let chaos_plan =
  Simnet.Faults.make ~drop:0.1 ~duplicate:0.05 ~delay_p:0.2 ~delay_max:2
    ~reorder:0.3 ~crash:2 ~crash_round:3 ~recover_after:4 ()

let traced_run_bytes plan =
  let path = Filename.temp_file "faults_trace" ".jsonl" in
  let trace = Simnet.Trace.open_file path in
  let eng, received = run_workload ~faults:plan ~trace ~n:8 ~rounds:12 () in
  Simnet.Trace.close trace;
  let bytes = read_file path in
  Sys.remove path;
  (bytes, received, Simnet.Engine.losses eng)

let test_same_seed_same_trace_bytes () =
  let b1, r1, l1 = traced_run_bytes chaos_plan in
  let b2, r2, l2 = traced_run_bytes chaos_plan in
  Alcotest.(check string) "identical JSONL bytes" b1 b2;
  Alcotest.(check int) "identical deliveries" r1 r2;
  Alcotest.(check bool) "identical losses" true (l1 = l2);
  (* the run actually exercised the fault paths *)
  Alcotest.(check bool) "some faults fired" true
    (l1.Simnet.Engine.dropped > 0 && String.length b1 > 0)

let test_different_fault_seed_differs () =
  let other = { chaos_plan with Simnet.Faults.seed = 99L } in
  let b1, _, _ = traced_run_bytes chaos_plan in
  let b2, _, _ = traced_run_bytes other in
  Alcotest.(check bool) "different fault seed, different trace" false (b1 = b2)

(* ---------- inert plans cost nothing ---------- *)

let test_none_plan_metrics_identical () =
  let eng_plain, r_plain = run_workload ~n:10 ~rounds:8 () in
  let eng_none, r_none =
    run_workload ~faults:Simnet.Faults.none ~n:10 ~rounds:8 ()
  in
  (* delay_p > 0 with delay_max = 0 can never fire either *)
  let inert = Simnet.Faults.make ~delay_p:0.5 ~delay_max:0 () in
  Alcotest.(check bool) "inert plan is none" true (Simnet.Faults.is_none inert);
  let eng_inert, r_inert = run_workload ~faults:inert ~n:10 ~rounds:8 () in
  Alcotest.(check int) "none: same deliveries" r_plain r_none;
  Alcotest.(check int) "inert: same deliveries" r_plain r_inert;
  Alcotest.(check bool) "no plan installed" true
    (Option.is_none (Simnet.Engine.fault_plan eng_none));
  List.iter
    (fun eng ->
      let m0 = Simnet.Engine.metrics eng_plain in
      let m = Simnet.Engine.metrics eng in
      Alcotest.(check int) "total msgs" (Simnet.Metrics.total_msgs m0)
        (Simnet.Metrics.total_msgs m);
      Alcotest.(check int) "total bits" (Simnet.Metrics.total_bits m0)
        (Simnet.Metrics.total_bits m);
      Alcotest.(check int) "max node bits"
        (Simnet.Metrics.max_node_bits_ever m0)
        (Simnet.Metrics.max_node_bits_ever m);
      let l = Simnet.Engine.losses eng in
      Alcotest.(check bool) "no losses" true
        (l.Simnet.Engine.dropped = 0 && l.Simnet.Engine.duplicated = 0
        && l.Simnet.Engine.delayed = 0
        && l.Simnet.Engine.crash_lost = 0
        && l.Simnet.Engine.subset_lost = 0))
    [ eng_none; eng_inert ]

(* ---------- per-fault accounting ---------- *)

let count_point_to_point ~faults ~sends =
  (* node 0 sends [sends] messages to node 1, one per round, no blocking *)
  let eng = Simnet.Engine.create ?faults ~n:2 ~msg_bits () in
  let received = ref 0 in
  for _ = 1 to sends + 5 do
    Simnet.Engine.deliver_and_step eng (fun ~round ~me ~inbox ->
        if me = 1 then received := !received + List.length inbox
        else if round < sends then Simnet.Engine.send eng ~src:0 ~dst:1 "m")
  done;
  (!received, Simnet.Engine.losses eng)

let test_drop_conserves_messages () =
  let plan = Simnet.Faults.make ~drop:0.3 () in
  let received, l = count_point_to_point ~faults:(Some plan) ~sends:200 in
  Alcotest.(check bool) "some drops" true (l.Simnet.Engine.dropped > 0);
  Alcotest.(check int) "delivered + dropped = sent" 200
    (received + l.Simnet.Engine.dropped)

let test_duplicate_every_message () =
  let plan = Simnet.Faults.make ~duplicate:1.0 () in
  let received, l = count_point_to_point ~faults:(Some plan) ~sends:50 in
  Alcotest.(check int) "every message doubled" 100 received;
  Alcotest.(check int) "duplicates counted" 50 l.Simnet.Engine.duplicated

let test_delay_shifts_arrival () =
  (* delay_p = 1, delay_max = 1: every message is held exactly one round. *)
  let plan = Simnet.Faults.make ~delay_p:1.0 ~delay_max:1 () in
  let eng = Simnet.Engine.create ~faults:plan ~n:2 ~msg_bits () in
  let arrivals = ref [] in
  for _ = 0 to 4 do
    Simnet.Engine.deliver_and_step eng (fun ~round ~me ~inbox ->
        if me = 1 && inbox <> [] then arrivals := round :: !arrivals;
        if me = 0 && round = 0 then Simnet.Engine.send eng ~src:0 ~dst:1 "m")
  done;
  (* undelayed arrival round would be 1; the hold pushes it to 2 *)
  Alcotest.(check (list int)) "arrives one round late" [ 2 ] !arrivals;
  Alcotest.(check int) "counted as delayed" 1
    (Simnet.Engine.losses eng).Simnet.Engine.delayed

let test_crash_stop_and_accounting () =
  let plan = Simnet.Faults.make ~crash:1 ~crash_round:1 () in
  let n = 4 in
  let eng = Simnet.Engine.create ~faults:plan ~n ~msg_bits () in
  let computed_while_crashed = ref 0 in
  for _ = 0 to 5 do
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
        if Simnet.Engine.is_crashed eng me then incr computed_while_crashed;
        for dst = 0 to n - 1 do
          if dst <> me then Simnet.Engine.send eng ~src:me ~dst "m"
        done)
  done;
  let crashed = List.filter (Simnet.Engine.is_crashed eng) [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "exactly one node crashed" 1 (List.length crashed);
  Alcotest.(check int) "crashed node never computes" 0 !computed_while_crashed;
  Alcotest.(check bool) "losses counted" true
    ((Simnet.Engine.losses eng).Simnet.Engine.crash_lost > 0)

let test_crash_recover () =
  let plan = Simnet.Faults.make ~crash:1 ~crash_round:1 ~recover_after:2 () in
  let eng = Simnet.Engine.create ~faults:plan ~n:3 ~msg_bits () in
  let crashed_rounds = ref [] in
  for r = 0 to 6 do
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox:_ -> ());
    for v = 0 to 2 do
      if Simnet.Engine.is_crashed eng v then crashed_rounds := r :: !crashed_rounds
    done
  done;
  (* crash at round 1, recover after 2 rounds: down in rounds 1 and 2 only *)
  Alcotest.(check (list int)) "down exactly two rounds" [ 2; 1 ]
    !crashed_rounds

(* ---------- subset_lost regression ---------- *)

let test_subset_lost_counted_and_traced () =
  let path = Filename.temp_file "subset_lost" ".jsonl" in
  let trace = Simnet.Trace.open_file path in
  let eng = Simnet.Engine.create ~trace ~n:4 ~msg_bits () in
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox:_ ->
      if me = 0 then begin
        Simnet.Engine.send eng ~src:0 ~dst:1 "kept";
        Simnet.Engine.send eng ~src:0 ~dst:3 "lost";
        Simnet.Engine.send eng ~src:0 ~dst:3 "lost-too"
      end);
  Simnet.Engine.deliver_and_step_subset eng ~nodes:[| 0; 1 |]
    (fun ~round:_ ~me:_ ~inbox:_ -> ());
  Simnet.Trace.close trace;
  Alcotest.(check int) "two messages lost to the subset" 2
    (Simnet.Engine.losses eng).Simnet.Engine.subset_lost;
  let contents = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "loss summarized in the trace" true
    (let found = ref false in
     String.split_on_char '\n' contents
     |> List.iter (fun line ->
            match Simnet.Trace.parse_jsonl_line line with
            | Some fields
              when List.assoc_opt "name" fields
                   = Some (Simnet.Trace.String "engine/subset_lost") ->
                found := true;
                Alcotest.(check (option value_testable)) "msgs field"
                  (Some (Simnet.Trace.Int 2))
                  (List.assoc_opt "msgs" fields)
            | _ -> ());
     !found)

(* ---------- spec parsing ---------- *)

let test_parse_spec () =
  match Simnet.Faults.parse_spec "drop=0.05,dup=0.01,delay=2,crash=3" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      Alcotest.(check (float 1e-9)) "drop" 0.05 p.Simnet.Faults.drop;
      Alcotest.(check (float 1e-9)) "dup" 0.01 p.Simnet.Faults.duplicate;
      Alcotest.(check int) "delay_max" 2 p.Simnet.Faults.delay_max;
      Alcotest.(check bool) "delay_p defaulted on" true
        (p.Simnet.Faults.delay_p > 0.0);
      Alcotest.(check int) "crash" 3 p.Simnet.Faults.crash;
      (* to_spec round-trips *)
      (match Simnet.Faults.parse_spec (Simnet.Faults.to_spec p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.failf "round trip failed: %s" e)

let test_parse_spec_rejects () =
  List.iter
    (fun spec ->
      match Simnet.Faults.parse_spec spec with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
      | Error _ -> ())
    [ "drop=1.5"; "nope=1"; "drop"; "crash=-1"; "" ]

(* ---------- invariants ---------- *)

let test_invariants_accept_cycle () =
  (* 0 -> 2 -> 1 -> 0 is a single Hamilton cycle on 3 nodes *)
  match Simnet.Invariants.check_cycle [| 2; 0; 1 |] with
  | Ok () -> ()
  | Error v -> Alcotest.failf "rejected: %s" (Simnet.Invariants.describe v)

let test_invariants_reject_broken () =
  let expect_error name succ =
    match Simnet.Invariants.check_cycle succ with
    | Ok () -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  expect_error "out of range" [| 1; 5; 0 |];
  expect_error "not injective" [| 1; 1; 0 |];
  (* two 2-cycles instead of one 4-cycle *)
  expect_error "two cycles" [| 1; 0; 3; 2 |]

let test_invariants_connectivity () =
  let path_neighbors n v =
    Array.of_list
      (List.filter (fun u -> u >= 0 && u < n) [ v - 1; v + 1 ])
  in
  (match Simnet.Invariants.check_connected ~n:5 ~neighbors:(path_neighbors 5) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "path rejected: %s" (Simnet.Invariants.describe v));
  let split v = if v = 2 then [||] else path_neighbors 5 v in
  (match Simnet.Invariants.check_connected ~n:5 ~neighbors:split with
  | Ok () -> Alcotest.fail "disconnected graph accepted"
  | Error _ -> ());
  Alcotest.(check int) "reachable counts the component" 3
    (Simnet.Invariants.reachable ~n:6 ~start:0 ~neighbors:(path_neighbors 3))

(* ---------- properties ---------- *)

let qcheck_drop_conservation =
  QCheck.Test.make ~name:"drop plan: delivered + dropped = sent" ~count:50
    QCheck.(pair int64 (int_range 2 12))
    (fun (seed, n) ->
      let plan = Simnet.Faults.make ~drop:0.25 ~seed () in
      let eng = Simnet.Engine.create ~faults:plan ~n ~msg_bits () in
      let sent = ref 0 and received = ref 0 in
      for r = 0 to 9 do
        Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
            received := !received + List.length inbox;
            if r < 9 then begin
              incr sent;
              Simnet.Engine.send eng ~src:me ~dst:((me + 1) mod n) "m"
            end)
      done;
      (* drain the last in-flight round *)
      Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me:_ ~inbox ->
          received := !received + List.length inbox);
      let l = Simnet.Engine.losses eng in
      !received + l.Simnet.Engine.dropped = !sent)

let () =
  Alcotest.run "simnet-faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace bytes" `Quick
            test_same_seed_same_trace_bytes;
          Alcotest.test_case "fault seed changes the run" `Quick
            test_different_fault_seed_differs;
        ] );
      ( "inert",
        [
          Alcotest.test_case "none plan leaves metrics identical" `Quick
            test_none_plan_metrics_identical;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "drop conserves messages" `Quick
            test_drop_conserves_messages;
          Alcotest.test_case "duplicate doubles" `Quick
            test_duplicate_every_message;
          Alcotest.test_case "delay shifts arrival" `Quick
            test_delay_shifts_arrival;
          Alcotest.test_case "crash-stop" `Quick test_crash_stop_and_accounting;
          Alcotest.test_case "crash-recover" `Quick test_crash_recover;
          Alcotest.test_case "subset_lost counted and traced" `Quick
            test_subset_lost_counted_and_traced;
        ] );
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_parse_spec;
          Alcotest.test_case "reject" `Quick test_parse_spec_rejects;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "accepts a cycle" `Quick
            test_invariants_accept_cycle;
          Alcotest.test_case "rejects broken successors" `Quick
            test_invariants_reject_broken;
          Alcotest.test_case "connectivity" `Quick
            test_invariants_connectivity;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_drop_conservation ] );
    ]
