(* Tests for Algorithm 3 (cycle reconfiguration), the churn network, the
   churn adversaries, and the static baseline (Section 4). *)

let rng () = Testutil.rng ()

let ring n = Array.init n (fun i -> (i + 1) mod n)

(* take_sample that draws directly from a stream (ideal sampling oracle) *)
let oracle r n _v = Prng.Stream.int r n

(* ---------- Reconfig: structure ---------- *)

let test_reconfig_identity_population () =
  (* no churn: the new cycle covers exactly the same m = n labels *)
  let n = 64 in
  let r = rng () in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  match
    Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
      ~joiner_labels ~take_sample:(oracle r n) ~m:n ()
  with
  | None -> Alcotest.fail "reconfiguration failed"
  | Some (new_succ, stats) ->
      Alcotest.(check bool) "new cycle is Hamiltonian" true
        (Topology.Hgraph.is_hamilton_cycle new_succ);
      Alcotest.(check bool) "some nodes active" true (stats.Core.Reconfig.active > 0);
      Alcotest.(check bool) "rounds small" true (stats.Core.Reconfig.rounds < 40)

let test_reconfig_with_leavers () =
  let n = 50 in
  let r = rng () in
  (* nodes 0..9 leave; stayers get labels 0..39 *)
  let out_label = Array.init n (fun i -> if i < 10 then -1 else i - 10) in
  let joiner_labels = Array.make n [||] in
  match
    Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
      ~joiner_labels ~take_sample:(oracle r n) ~m:40 ()
  with
  | None -> Alcotest.fail "reconfiguration failed"
  | Some (new_succ, _) ->
      Alcotest.(check int) "cycle over stayers only" 40 (Array.length new_succ);
      Alcotest.(check bool) "hamiltonian" true
        (Topology.Hgraph.is_hamilton_cycle new_succ)

let test_reconfig_with_joiners () =
  let n = 30 in
  let r = rng () in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  (* node 3 introduces two joiners, node 7 one *)
  joiner_labels.(3) <- [| 30; 31 |];
  joiner_labels.(7) <- [| 32 |];
  match
    Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
      ~joiner_labels ~take_sample:(oracle r n) ~m:33 ()
  with
  | None -> Alcotest.fail "reconfiguration failed"
  | Some (new_succ, _) ->
      Alcotest.(check int) "joiners included" 33 (Array.length new_succ);
      Alcotest.(check bool) "hamiltonian" true
        (Topology.Hgraph.is_hamilton_cycle new_succ)

let test_reconfig_label_validation () =
  let n = 10 in
  let r = rng () in
  let joiner_labels = Array.make n [||] in
  (* duplicate label 0 *)
  let out_label = Array.init n (fun i -> if i <= 1 then 0 else i) in
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Reconfig: duplicate label") (fun () ->
      ignore
        (Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
           ~joiner_labels ~take_sample:(oracle r n) ~m:n ()))

let test_reconfig_missing_label () =
  let n = 10 in
  let r = rng () in
  let joiner_labels = Array.make n [||] in
  let out_label = Array.init n (fun i -> if i = 0 then -1 else i) in
  (* label 0 never assigned but m = 10 *)
  Alcotest.check_raises "missing label"
    (Invalid_argument "Reconfig: label 0 never assigned") (fun () ->
      ignore
        (Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
           ~joiner_labels ~take_sample:(oracle r n) ~m:n ()))

let test_reconfig_empty () =
  let n = 5 in
  let r = rng () in
  let out_label = Array.make n (-1) in
  let joiner_labels = Array.make n [||] in
  Alcotest.(check bool) "m = 0 reports failure" true
    (Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
       ~joiner_labels ~take_sample:(oracle r n) ~m:0 ()
    = None)

(* ---------- Reconfig: fault injection (typed failures, reply retries) -- *)

let test_reconfig_typed_failure_on_lost_replies () =
  (* Every pointer-doubling reply lost, no retry budget: the run must fail
     with a typed Replies_lost, never hand back a cycle. *)
  let n = 32 in
  let r = rng () in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  match
    Core.Reconfig.reconfigure ~rng:r ~succ:(ring n) ~out_label ~joiner_labels
      ~drop:(fun () -> true)
      ~take_sample:(oracle r n) ~m:n ()
  with
  | Ok _ -> Alcotest.fail "lost replies must not produce a cycle"
  | Error (Core.Reconfig.Replies_lost f) ->
      Alcotest.(check bool) "stalled nodes reported" true (f.stalled > 0);
      Alcotest.(check bool) "losses counted" true (f.lost > 0)
  | Error Core.Reconfig.No_active_nodes -> Alcotest.fail "wrong failure kind"

let test_reconfig_retry_recovers_lost_replies () =
  (* Drop the first few replies; a retry budget re-issues them and the run
     completes with a valid Hamilton cycle and a retry count. *)
  let n = 32 in
  let r = rng () in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  (* retries for one node are consecutive, so keep the loss burst within a
     single node's budget *)
  let remaining = ref 2 in
  let drop () =
    if !remaining > 0 then begin
      decr remaining;
      true
    end
    else false
  in
  match
    Core.Reconfig.reconfigure ~rng:r ~succ:(ring n) ~out_label ~joiner_labels
      ~drop ~max_retries:3 ~take_sample:(oracle r n) ~m:n ()
  with
  | Error f -> Alcotest.failf "failed: %s" (Core.Reconfig.describe_failure f)
  | Ok (new_succ, stats) ->
      Alcotest.(check bool) "hamiltonian" true
        (Topology.Hgraph.is_hamilton_cycle new_succ);
      Alcotest.(check int) "every loss was retried" 2
        stats.Core.Reconfig.reply_retries

let test_reconfig_no_active_nodes_typed () =
  let n = 5 in
  let r = rng () in
  let out_label = Array.make n (-1) in
  let joiner_labels = Array.make n [||] in
  match
    Core.Reconfig.reconfigure ~rng:r ~succ:(ring n) ~out_label ~joiner_labels
      ~take_sample:(oracle r n) ~m:0 ()
  with
  | Error Core.Reconfig.No_active_nodes -> ()
  | Error f -> Alcotest.failf "wrong kind: %s" (Core.Reconfig.describe_failure f)
  | Ok _ -> Alcotest.fail "m = 0 must fail"

let test_churn_network_fault_epoch_keeps_old_topology () =
  (* A fault plan that kills every reply with no recovery budget: the epoch
     fails typed, the old topology stands, and nothing is silently wrong. *)
  let n = 64 in
  let s = rng () in
  let faults = Simnet.Faults.make ~drop:1.0 () in
  let net =
    Core.Churn_network.create ~faults ~rng:(Prng.Stream.split s) ~n ()
  in
  let before = Core.Churn_network.graph net in
  let r = Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||] in
  Alcotest.(check bool) "epoch failed" false r.Core.Churn_network.valid;
  Alcotest.(check bool) "typed reason attached" true
    (Option.is_some r.Core.Churn_network.failure);
  Alcotest.(check bool) "stale pointers counted" true
    (r.Core.Churn_network.stale_pointers > 0);
  Alcotest.(check bool) "old topology stands" true
    (Core.Churn_network.graph net == before);
  Alcotest.(check (float 1e-9)) "old topology still fully reachable" 1.0
    r.Core.Churn_network.reachable_fraction

let test_churn_network_fault_epoch_recovers_with_retry () =
  let n = 64 in
  let s = rng () in
  let faults = Simnet.Faults.make ~drop:0.05 () in
  let net =
    Core.Churn_network.create ~faults
      ~retry:(Core.Retry.make ~max_retries:4 ())
      ~rng:(Prng.Stream.split s) ~n ()
  in
  let r = Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||] in
  Alcotest.(check bool) "epoch valid under faults" true
    r.Core.Churn_network.valid;
  Alcotest.(check bool) "connected" true r.Core.Churn_network.connected;
  Alcotest.(check int) "no stale pointers" 0
    r.Core.Churn_network.stale_pointers;
  Alcotest.(check bool) "losses were retried" true
    (r.Core.Churn_network.reply_retries > 0);
  Alcotest.(check (option string)) "no failure" None
    r.Core.Churn_network.failure

(* ---------- Reconfig: uniformity (Lemma 10 / Theorem 4) ---------- *)

let test_reconfig_uniform_over_cycles () =
  (* n = 5: there are 4! = 24 directed Hamilton cycles fixing node 0's
     position as the start.  Encode the new cycle as the tour starting at
     label 0 and chi-square against uniformity. *)
  let n = 5 in
  let r = rng () in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  let counts = Hashtbl.create 24 in
  let trials = 24_000 in
  for _ = 1 to trials do
    match
      Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
        ~joiner_labels ~take_sample:(oracle r n) ~m:n ()
    with
    | None -> Alcotest.fail "reconfiguration failed"
    | Some (new_succ, _) ->
        let tour = Buffer.create 8 in
        let v = ref new_succ.(0) in
        while !v <> 0 do
          Buffer.add_string tour (string_of_int !v);
          v := new_succ.(!v)
        done;
        let key = Buffer.contents tour in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all 24 cycles reached" 24 (Hashtbl.length counts);
  let observed = Array.of_seq (Seq.map snd (Hashtbl.to_seq counts)) in
  Alcotest.(check bool) "uniform over cycles (chi-square)" true
    (Stats.Chi_square.test_uniform observed > 0.001)

(* ---------- Reconfig: congestion and segments (Lemmas 11-13) ---------- *)

let test_reconfig_stats_bounds () =
  let n = 2048 in
  let r = rng () in
  let out_label = Array.init n (fun i -> i) in
  let joiner_labels = Array.make n [||] in
  match
    Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
      ~joiner_labels ~take_sample:(oracle r n) ~m:n ()
  with
  | None -> Alcotest.fail "reconfiguration failed"
  | Some (_, stats) ->
      (* Lemma 11: polylog congestion (log2 2048 = 11; allow a couple of
         log factors of slack) *)
      Alcotest.(check bool)
        (Printf.sprintf "congestion %d polylog" stats.Core.Reconfig.max_chosen)
        true
        (stats.Core.Reconfig.max_chosen <= 33);
      (* Lemma 12: polylog empty segments *)
      Alcotest.(check bool)
        (Printf.sprintf "empty segment %d polylog" stats.Core.Reconfig.max_empty_segment)
        true
        (stats.Core.Reconfig.max_empty_segment <= 44);
      (* Lemma 13: O(log log n) rounds; doubling steps <= log2(max segment)+1 *)
      Alcotest.(check bool)
        (Printf.sprintf "doubling steps %d" stats.Core.Reconfig.doubling_steps)
        true
        (stats.Core.Reconfig.doubling_steps <= 7)

(* ---------- Churn network (Theorem 5) ---------- *)

let test_churn_network_no_churn_epoch () =
  let net = Core.Churn_network.create ~rng:(rng ()) ~n:256 () in
  let r = Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||] in
  Alcotest.(check bool) "valid" true r.Core.Churn_network.valid;
  Alcotest.(check bool) "connected" true r.Core.Churn_network.connected;
  Alcotest.(check int) "size unchanged" 256 r.Core.Churn_network.n_after;
  Alcotest.(check int) "graph updated" 256 (Core.Churn_network.size net)

let test_churn_network_epochs_with_churn () =
  let s = rng () in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n:300 () in
  for _ = 1 to 5 do
    let n = Core.Churn_network.size net in
    let plan =
      Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
        ~rng:(Prng.Stream.split s)
        ~graph:(Core.Churn_network.graph net) ~leave_frac:0.3 ~join_frac:0.3
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    Alcotest.(check bool) "valid epoch" true r.Core.Churn_network.valid;
    Alcotest.(check bool) "connected" true r.Core.Churn_network.connected;
    Alcotest.(check int) "bookkeeping"
      (n - r.Core.Churn_network.left + r.Core.Churn_network.joined)
      r.Core.Churn_network.n_after
  done

let test_churn_network_ids_persist () =
  let s = rng () in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n:100 () in
  let before = Core.Churn_network.ids net in
  (* everyone stays: the id multiset must be preserved *)
  let r = Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||] in
  Alcotest.(check bool) "valid" true r.Core.Churn_network.valid;
  let after = Core.Churn_network.ids net in
  Alcotest.(check (list int)) "same ids"
    (List.sort compare (Array.to_list before))
    (List.sort compare (Array.to_list after))

let test_churn_network_leaver_ids_gone () =
  let s = rng () in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n:100 () in
  let gone = [| 0; 5; 99 |] in
  let gone_ids = Array.map (fun p -> (Core.Churn_network.ids net).(p)) gone in
  ignore (Core.Churn_network.epoch net ~leaves:gone ~join_introducers:[||]);
  let after = Core.Churn_network.ids net in
  Array.iter
    (fun id ->
      Alcotest.(check bool) "leaver id absent" false (Array.mem id after))
    gone_ids;
  Alcotest.(check int) "three fewer nodes" 97 (Core.Churn_network.size net)

let test_churn_network_min_size_guard () =
  let net = Core.Churn_network.create ~rng:(rng ()) ~n:10 () in
  let leaves = Array.init 9 (fun i -> i) in
  Alcotest.check_raises "too small"
    (Invalid_argument "Churn_network.epoch: surviving network too small")
    (fun () -> ignore (Core.Churn_network.epoch net ~leaves ~join_introducers:[||]))

let test_churn_rounds_loglog_shape () =
  (* Epoch round count should grow by O(1) as n doubles repeatedly. *)
  let rounds_at n =
    let net = Core.Churn_network.create ~rng:(rng ()) ~n () in
    let r = Core.Churn_network.epoch net ~leaves:[||] ~join_introducers:[||] in
    r.Core.Churn_network.rounds
  in
  let r256 = rounds_at 256 and r4096 = rounds_at 4096 in
  Alcotest.(check bool)
    (Printf.sprintf "rounds grow slowly: %d -> %d" r256 r4096)
    true
    (r4096 - r256 <= 6)

let test_delegation_chains () =
  (* Joiners introduced to other joiners resolve transitively to a member
     (Section 1.1's delegation rule). *)
  let net = Core.Churn_network.create ~rng:(rng ()) ~n:100 () in
  let r =
    Core.Churn_network.epoch_with_delegation net ~leaves:[||]
      ~join_introducers:
        [| `Member 5; `Joiner 0; `Joiner 1; `Member 9; `Joiner 3 |]
  in
  Alcotest.(check bool) "valid" true r.Core.Churn_network.valid;
  Alcotest.(check int) "all five joined" 105 r.Core.Churn_network.n_after;
  (* the chain 2 -> 1 -> 0 -> member 5 concentrates three joiners on one
     delegate *)
  Alcotest.(check bool) "delegate load reflects chains" true
    (r.Core.Churn_network.max_joiners_per_node >= 3)

let test_delegation_cycle_rejected () =
  let net = Core.Churn_network.create ~rng:(rng ()) ~n:50 () in
  Alcotest.check_raises "cycle detected"
    (Invalid_argument "Churn_network: cyclic introduction chain") (fun () ->
      ignore
        (Core.Churn_network.epoch_with_delegation net ~leaves:[||]
           ~join_introducers:[| `Joiner 1; `Joiner 0 |]))

let test_plain_walk_sampler_ablation () =
  (* Ablation A1: the plain-walk sampler must produce the same valid,
     connected reconfigurations — just with Theta(log n) epoch rounds. *)
  let s = rng () in
  let fast =
    Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n:512 ()
  in
  let slow =
    Core.Churn_network.create ~sampler:Core.Churn_network.Plain_walks
      ~rng:(Prng.Stream.split s) ~n:512 ()
  in
  let rf = Core.Churn_network.epoch fast ~leaves:[| 1 |] ~join_introducers:[| 0 |] in
  let rs = Core.Churn_network.epoch slow ~leaves:[| 1 |] ~join_introducers:[| 0 |] in
  Alcotest.(check bool) "plain epoch valid" true
    (rs.Core.Churn_network.valid && rs.Core.Churn_network.connected);
  Alcotest.(check bool) "plain costs more rounds" true
    (rs.Core.Churn_network.rounds > rf.Core.Churn_network.rounds);
  Alcotest.(check int) "plain walks never underflow" 0
    rs.Core.Churn_network.sampling_underflows

let qcheck_ids_never_resurrect =
  (* Monotonicity of the model (Section 1.1): once an id leaves V it never
     reappears, and every id enters exactly once. *)
  QCheck.Test.make ~name:"ids enter once and never resurrect" ~count:8
    QCheck.int64
    (fun seed ->
      let s = Prng.Stream.of_seed seed in
      let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n:60 () in
      let departed = Hashtbl.create 64 in
      let ok = ref true in
      for _ = 1 to 4 do
        let before = Core.Churn_network.ids net in
        let plan =
          Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
            ~rng:(Prng.Stream.split s)
            ~graph:(Core.Churn_network.graph net) ~leave_frac:0.3
            ~join_frac:0.3
        in
        ignore
          (Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
             ~join_introducers:plan.Core.Churn_adversary.join_introducers);
        let after = Core.Churn_network.ids net in
        (* anything present now must not be a previously departed id *)
        Array.iter
          (fun id -> if Hashtbl.mem departed id then ok := false)
          after;
        (* record ids that disappeared this epoch *)
        let still = Hashtbl.create 64 in
        Array.iter (fun id -> Hashtbl.replace still id ()) after;
        Array.iter
          (fun id -> if not (Hashtbl.mem still id) then Hashtbl.replace departed id ())
          before
      done;
      !ok)

(* ---------- Churn adversaries ---------- *)

let test_adversary_plans_within_budget () =
  let s = rng () in
  let graph = Topology.Hgraph.random (Prng.Stream.split s) ~n:200 ~d:8 in
  List.iter
    (fun strat ->
      let plan =
        Core.Churn_adversary.plan strat ~rng:(Prng.Stream.split s) ~graph
          ~leave_frac:0.4 ~join_frac:0.2
      in
      Alcotest.(check int) "leave count" 80
        (Array.length plan.Core.Churn_adversary.leaves);
      Alcotest.(check int) "join count" 40
        (Array.length plan.Core.Churn_adversary.join_introducers);
      (* introducers must be staying members *)
      let leaving = Array.make 200 false in
      Array.iter (fun p -> leaving.(p) <- true) plan.Core.Churn_adversary.leaves;
      Array.iter
        (fun p ->
          Alcotest.(check bool) "introducer stays" false leaving.(p))
        plan.Core.Churn_adversary.join_introducers)
    Core.Churn_adversary.all

let test_adversary_leaves_distinct () =
  let s = rng () in
  let graph = Topology.Hgraph.random (Prng.Stream.split s) ~n:100 ~d:8 in
  List.iter
    (fun strat ->
      let plan =
        Core.Churn_adversary.plan strat ~rng:(Prng.Stream.split s) ~graph
          ~leave_frac:0.5 ~join_frac:0.0
      in
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun p ->
          Alcotest.(check bool) "distinct leaver" false (Hashtbl.mem seen p);
          Hashtbl.add seen p ())
        plan.Core.Churn_adversary.leaves)
    Core.Churn_adversary.all

let test_adversary_segment_contiguous () =
  let s = rng () in
  let graph = Topology.Hgraph.random (Prng.Stream.split s) ~n:100 ~d:8 in
  let plan =
    Core.Churn_adversary.plan Core.Churn_adversary.Segment_leavers
      ~rng:(Prng.Stream.split s) ~graph ~leave_frac:0.2 ~join_frac:0.0
  in
  let l = plan.Core.Churn_adversary.leaves in
  for i = 0 to Array.length l - 2 do
    Alcotest.(check int) "consecutive on cycle 0" l.(i + 1)
      (Topology.Hgraph.succ graph ~cycle:0 l.(i))
  done

let test_adversary_introducer_cap () =
  let s = rng () in
  let graph = Topology.Hgraph.random (Prng.Stream.split s) ~n:100 ~d:8 in
  List.iter
    (fun strat ->
      let plan =
        Core.Churn_adversary.plan ~max_per_introducer:3 strat
          ~rng:(Prng.Stream.split s) ~graph ~leave_frac:0.1 ~join_frac:0.5
      in
      let load = Hashtbl.create 64 in
      Array.iter
        (fun p ->
          Hashtbl.replace load p
            (1 + Option.value ~default:0 (Hashtbl.find_opt load p)))
        plan.Core.Churn_adversary.join_introducers;
      Hashtbl.iter
        (fun _ c -> Alcotest.(check bool) "cap respected" true (c <= 3))
        load)
    Core.Churn_adversary.all

(* ---------- Static baseline (ablation A2) ---------- *)

let test_static_baseline_survives_light_churn () =
  let b = Core.Static_baseline.create ~rng:(rng ()) ~n:200 () in
  Core.Static_baseline.apply b ~leaves:[| 0; 1; 2 |] ~join_introducers:[| 10 |];
  Alcotest.(check int) "alive count" 198 (Core.Static_baseline.alive_count b);
  Alcotest.(check bool) "still connected" true (Core.Static_baseline.is_connected b)

let test_static_baseline_join_then_introducer_dies () =
  let b = Core.Static_baseline.create ~rng:(rng ()) ~n:50 () in
  (* the joiner hangs off node 10 only; kill node 10 *)
  Core.Static_baseline.apply b ~leaves:[||] ~join_introducers:[| 10 |];
  Core.Static_baseline.apply b ~leaves:[| 10 |] ~join_introducers:[||];
  Alcotest.(check bool) "joiner isolated" false
    (Core.Static_baseline.is_connected b);
  Alcotest.(check bool) "most nodes in main component" true
    (Core.Static_baseline.largest_component_fraction b > 0.9)

let test_static_baseline_heavy_churn_fragments () =
  (* Under the same churn volume the reconfigured network handles, the
     static baseline eventually disconnects, w.h.p. *)
  let s = rng () in
  let b = Core.Static_baseline.create ~rng:(Prng.Stream.split s) ~n:400 () in
  let r = Prng.Stream.split s in
  let disconnected = ref false in
  for _ = 1 to 12 do
    if not !disconnected then begin
      let alive = Core.Static_baseline.alive_positions b in
      let kill =
        Array.init
          (Array.length alive * 3 / 10)
          (fun i -> alive.(i * 3 mod Array.length alive))
      in
      let survivors =
        Array.of_list
          (List.filter
             (fun v -> not (Array.mem v kill))
             (Array.to_list alive))
      in
      let joins =
        Array.init (Array.length kill) (fun _ ->
            survivors.(Prng.Stream.int r (Array.length survivors)))
      in
      Core.Static_baseline.apply b ~leaves:kill ~join_introducers:joins;
      if not (Core.Static_baseline.is_connected b) then disconnected := true
    end
  done;
  Alcotest.(check bool) "static baseline fragments" true !disconnected

let test_static_baseline_dead_introducer_rejected () =
  let b = Core.Static_baseline.create ~rng:(rng ()) ~n:20 () in
  Core.Static_baseline.apply b ~leaves:[| 5 |] ~join_introducers:[||];
  Alcotest.check_raises "dead introducer"
    (Invalid_argument "Static_baseline.apply: dead introducer") (fun () ->
      Core.Static_baseline.apply b ~leaves:[||] ~join_introducers:[| 5 |])

(* ---------- properties ---------- *)

let qcheck_reconfig_always_hamiltonian =
  QCheck.Test.make ~name:"reconfigured cycle is always Hamiltonian" ~count:60
    QCheck.(triple int64 (int_range 5 100) (int_range 0 30))
    (fun (seed, n, leavers_raw) ->
      let r = Prng.Stream.of_seed seed in
      let leavers = min leavers_raw (n - 3) in
      let out_label = Array.make n (-1) in
      let next = ref 0 in
      for i = leavers to n - 1 do
        out_label.(i) <- !next;
        incr next
      done;
      let joiner_labels = Array.make n [||] in
      (* a couple of joiners on node n-1 *)
      joiner_labels.(n - 1) <- [| !next; !next + 1 |];
      let m = !next + 2 in
      match
        Core.Reconfig.reconfigure_cycle ~rng:r ~succ:(ring n) ~out_label
          ~joiner_labels
          ~take_sample:(fun _ -> Prng.Stream.int r n)
          ~m ()
      with
      | None -> false
      | Some (new_succ, _) ->
          Array.length new_succ = m
          && Topology.Hgraph.is_hamilton_cycle new_succ)

let qcheck_churn_epoch_preserves_invariants =
  QCheck.Test.make ~name:"churn epochs keep the H-graph valid" ~count:10
    QCheck.(pair int64 (int_range 50 200))
    (fun (seed, n) ->
      let s = Prng.Stream.of_seed seed in
      let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n () in
      let ok = ref true in
      for _ = 1 to 3 do
        let plan =
          Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
            ~rng:(Prng.Stream.split s)
            ~graph:(Core.Churn_network.graph net) ~leave_frac:0.2
            ~join_frac:0.25
        in
        let r =
          Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
            ~join_introducers:plan.Core.Churn_adversary.join_introducers
        in
        if not (r.Core.Churn_network.valid && r.Core.Churn_network.connected)
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "core-reconfig"
    [
      ( "reconfig",
        [
          Alcotest.test_case "identity population" `Quick
            test_reconfig_identity_population;
          Alcotest.test_case "with leavers" `Quick test_reconfig_with_leavers;
          Alcotest.test_case "with joiners" `Quick test_reconfig_with_joiners;
          Alcotest.test_case "label validation" `Quick
            test_reconfig_label_validation;
          Alcotest.test_case "missing label" `Quick test_reconfig_missing_label;
          Alcotest.test_case "empty population" `Quick test_reconfig_empty;
          Alcotest.test_case "uniform over cycles (Lemma 10)" `Slow
            test_reconfig_uniform_over_cycles;
          Alcotest.test_case "congestion/segment bounds" `Quick
            test_reconfig_stats_bounds;
        ] );
      ( "churn-network",
        [
          Alcotest.test_case "no-churn epoch" `Quick
            test_churn_network_no_churn_epoch;
          Alcotest.test_case "epochs with churn" `Slow
            test_churn_network_epochs_with_churn;
          Alcotest.test_case "ids persist" `Quick test_churn_network_ids_persist;
          Alcotest.test_case "leaver ids gone" `Quick
            test_churn_network_leaver_ids_gone;
          Alcotest.test_case "min size guard" `Quick
            test_churn_network_min_size_guard;
          Alcotest.test_case "rounds grow loglog" `Slow
            test_churn_rounds_loglog_shape;
          Alcotest.test_case "plain-walk sampler (ablation A1)" `Quick
            test_plain_walk_sampler_ablation;
          Alcotest.test_case "delegation chains" `Quick test_delegation_chains;
          Alcotest.test_case "delegation cycle rejected" `Quick
            test_delegation_cycle_rejected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "typed failure on lost replies" `Quick
            test_reconfig_typed_failure_on_lost_replies;
          Alcotest.test_case "retry recovers lost replies" `Quick
            test_reconfig_retry_recovers_lost_replies;
          Alcotest.test_case "no active nodes typed" `Quick
            test_reconfig_no_active_nodes_typed;
          Alcotest.test_case "failed epoch keeps old topology" `Quick
            test_churn_network_fault_epoch_keeps_old_topology;
          Alcotest.test_case "epoch recovers with retry" `Quick
            test_churn_network_fault_epoch_recovers_with_retry;
        ] );
      ( "churn-adversary",
        [
          Alcotest.test_case "budget respected" `Quick
            test_adversary_plans_within_budget;
          Alcotest.test_case "leaves distinct" `Quick
            test_adversary_leaves_distinct;
          Alcotest.test_case "segment contiguous" `Quick
            test_adversary_segment_contiguous;
          Alcotest.test_case "introducer cap" `Quick
            test_adversary_introducer_cap;
        ] );
      ( "static-baseline",
        [
          Alcotest.test_case "light churn ok" `Quick
            test_static_baseline_survives_light_churn;
          Alcotest.test_case "dead introducer isolates joiner" `Quick
            test_static_baseline_join_then_introducer_dies;
          Alcotest.test_case "heavy churn fragments" `Slow
            test_static_baseline_heavy_churn_fragments;
          Alcotest.test_case "dead introducer rejected" `Quick
            test_static_baseline_dead_introducer_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_reconfig_always_hamiltonian;
            qcheck_churn_epoch_preserves_invariants;
            qcheck_ids_never_resurrect;
          ] );
    ]
