(* Core.Stabilize: convergence from every corruption class, the static
   baseline's guaranteed non-convergence, determinism, and the repair
   trace vocabulary. *)

let spec ?(severity = 0.25) ?(seed = 7L) cls =
  Simnet.Corruption.make ~severity ~seed cls

let run ?trace ?mode ?max_epochs ?retry ?faults ?(seed = 42L) ?(n = 64)
    ?(d = 8) corruption =
  Core.Stabilize.run ?trace ?mode ?max_epochs ?retry ?faults ~corruption
    ~rng:(Prng.Stream.of_seed seed) ~n ~d ()

let test_converges_from_every_class () =
  List.iter
    (fun cls ->
      List.iter
        (fun severity ->
          let r = run (spec ~severity cls) in
          let name =
            Printf.sprintf "%s@%g"
              (Simnet.Corruption.class_to_string cls)
              severity
          in
          Alcotest.(check bool) (name ^ " converged") true r.Core.Stabilize.converged;
          Alcotest.(check (list string)) (name ^ " no residual") []
            (List.map Simnet.Invariants.describe r.Core.Stabilize.residual);
          Alcotest.(check bool)
            (name ^ " found initial damage") true
            (r.Core.Stabilize.initial_violations > 0);
          Alcotest.(check bool)
            (name ^ " bounded epochs") true
            (r.Core.Stabilize.epochs <= 4);
          Alcotest.(check bool) (name ^ " spent bits") true (r.Core.Stabilize.bits > 0))
        [ 0.1; 0.25; 0.5 ])
    Simnet.Corruption.all

let test_static_never_converges () =
  List.iter
    (fun cls ->
      let r = run ~mode:Core.Stabilize.Static (spec cls) in
      let name = Simnet.Corruption.class_to_string cls in
      Alcotest.(check bool) (name ^ " static stuck") false r.Core.Stabilize.converged;
      Alcotest.(check bool)
        (name ^ " residual reported") true
        (r.Core.Stabilize.residual <> []);
      Alcotest.(check int) (name ^ " one epoch") 1 r.Core.Stabilize.epochs;
      Alcotest.(check int) (name ^ " no patches") 0 r.Core.Stabilize.patches)
    Simnet.Corruption.all

let test_same_seed_same_report () =
  let r1 = run (spec Split) and r2 = run (spec Split) in
  Alcotest.(check bool) "reports identical" true (r1 = r2)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let traced_run path corruption =
  let trace = Simnet.Trace.open_file path in
  let r = run ~trace corruption in
  Simnet.Trace.close trace;
  r

let test_same_seed_byte_identical_trace () =
  let p1 = Filename.temp_file "stab" ".jsonl"
  and p2 = Filename.temp_file "stab" ".jsonl" in
  let r1 = traced_run p1 (spec Partition)
  and r2 = traced_run p2 (spec Partition) in
  Alcotest.(check bool) "reports equal" true (r1 = r2);
  Alcotest.(check string) "traces byte-identical" (read_file p1) (read_file p2);
  Sys.remove p1;
  Sys.remove p2

let test_trace_vocabulary () =
  let p = Filename.temp_file "stab" ".jsonl" in
  let r = traced_run p (spec Cross_link) in
  Alcotest.(check bool) "converged" true r.Core.Stabilize.converged;
  let body = read_file p in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "trace mentions %s" needle)
        true
        (Testutil.contains body (Printf.sprintf "\"name\":%S" needle)))
    [ "repair/detect"; "repair/patch"; "repair/reconfig"; "converged" ];
  Sys.remove p

let test_converges_under_faults () =
  let faults =
    match Simnet.Faults.parse_spec "drop=0.1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let retry = Core.Retry.make ~max_retries:4 () in
  let r = run ~faults ~retry ~max_epochs:32 (spec ~severity:0.5 Branch) in
  Alcotest.(check bool) "converged despite drops" true r.Core.Stabilize.converged;
  Alcotest.(check bool) "losses forced retries" true (r.Core.Stabilize.retries > 0)

let test_unreachable_without_budget_degrades () =
  (* With heavy drops and no retry budget, convergence may take more
     epochs (or fail inside the budget) — the report stays typed either
     way and residuals match the converged flag. *)
  let faults =
    match Simnet.Faults.parse_spec "drop=0.6" with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let r = run ~faults ~max_epochs:3 (spec ~severity:0.5 Out_of_range) in
  Alcotest.(check bool)
    "flag matches residual" r.Core.Stabilize.converged
    (r.Core.Stabilize.residual = [])

let test_rejects_bad_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> run ~n:3 (spec Branch));
  raises (fun () -> run ~d:1 (spec Branch));
  raises (fun () -> run ~max_epochs:0 (spec Branch));
  (* crash plans are not supported by the repair driver *)
  match Simnet.Faults.parse_spec "crash=2" with
  | Error e -> Alcotest.failf "plan: %s" e
  | Ok faults -> raises (fun () -> run ~faults (spec Branch))

let test_mode_strings () =
  List.iter
    (fun m ->
      match Core.Stabilize.(mode_of_string (mode_to_string m)) with
      | Ok m' -> Alcotest.(check bool) "mode round-trip" true (m = m')
      | Error e -> Alcotest.fail e)
    [ Core.Stabilize.Repair; Core.Stabilize.Static ];
  match Core.Stabilize.mode_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let () =
  Alcotest.run "core_stabilize"
    [
      ( "convergence",
        [
          Alcotest.test_case "every class, severity <= 0.5" `Quick
            test_converges_from_every_class;
          Alcotest.test_case "static baseline never converges" `Quick
            test_static_never_converges;
          Alcotest.test_case "under drops with retry budget" `Quick
            test_converges_under_faults;
          Alcotest.test_case "typed report under heavy drops" `Quick
            test_unreachable_without_budget_degrades;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same report" `Quick
            test_same_seed_same_report;
          Alcotest.test_case "same seed, byte-identical trace" `Quick
            test_same_seed_byte_identical_trace;
        ] );
      ( "interface",
        [
          Alcotest.test_case "trace vocabulary" `Quick test_trace_vocabulary;
          Alcotest.test_case "rejects bad arguments" `Quick
            test_rejects_bad_args;
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
        ] );
    ]
