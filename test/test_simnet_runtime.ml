(* Tests for the driver-level runtime (Simnet.Runtime) and the run spec
   (Simnet.Scenario).

   The load-bearing properties: a plan field the driver does not support
   is rejected loudly at creation; leg rolls follow the engine's
   drop -> delay -> duplicate precedence and charge every loss;
   fault streams are size-independently keyed, so growing the network
   never shifts them; run_epoch accounts rounds exactly once whether or
   not the driver advanced them itself; Scenario.of_args/parse are the
   single, strict parsing point for run specs. *)

let plan_of_spec s =
  match Simnet.Faults.parse_spec s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad plan spec %S: %s" s e

(* ---------- feature gating ---------- *)

let test_unsupported_feature_rejected () =
  let faults = plan_of_spec "drop=0.5,crash=2" in
  let expected =
    "Test_driver: fault plan field `crash' is not supported by this driver"
  in
  Alcotest.check_raises "crash rejected" (Invalid_argument expected) (fun () ->
      ignore
        (Simnet.Runtime.create ~faults ~supports:[ `Drop ] ~who:"Test_driver"
           ~n:8 ()))

let test_supported_plan_installs () =
  let faults = plan_of_spec "drop=0.5,crash=2" in
  let rt =
    Simnet.Runtime.create ~faults ~supports:[ `Drop; `Crash ] ~n:8 ()
  in
  Alcotest.(check bool) "faulty" true (Simnet.Runtime.faulty rt);
  Alcotest.(check bool)
    "plan kept" true
    (Option.is_some (Simnet.Runtime.plan rt))

let test_inert_plan_not_installed () =
  let rt =
    Simnet.Runtime.create ~faults:Simnet.Faults.none ~supports:[] ~n:8 ()
  in
  Alcotest.(check bool) "not faulty" false (Simnet.Runtime.faulty rt);
  Alcotest.(check bool) "legs arrive" true (Simnet.Runtime.leg rt ())

(* ---------- leg rolls and loss accounting ---------- *)

let test_leg_losses_accounted () =
  let faults = plan_of_spec "drop=0.3,dup=0.2,delayp=0.2,delay=3" in
  let rt = Simnet.Runtime.create ~faults ~n:8 () in
  let legs = 10_000 in
  let arrived = ref 0 in
  for _ = 1 to legs do
    if Simnet.Runtime.leg rt () then incr arrived
  done;
  let l = Simnet.Runtime.losses rt in
  Alcotest.(check int)
    "arrived + dropped + delayed = legs" legs
    (!arrived + l.Simnet.Runtime.dropped + l.Simnet.Runtime.delayed);
  Alcotest.(check bool) "some dropped" true (l.Simnet.Runtime.dropped > 0);
  Alcotest.(check bool) "some delayed" true (l.Simnet.Runtime.delayed > 0);
  (* Duplicated legs still arrive: the counter ticks without killing. *)
  Alcotest.(check bool)
    "some duplicated" true
    (l.Simnet.Runtime.duplicated > 0);
  Alcotest.(check bool)
    "duplicates arrived" true
    (!arrived >= l.Simnet.Runtime.duplicated)

let test_leg_deterministic () =
  let run () =
    let faults = plan_of_spec "drop=0.3,dup=0.1,seed=9" in
    let rt = Simnet.Runtime.create ~faults ~n:8 () in
    List.init 200 (fun _ -> Simnet.Runtime.leg rt ())
  in
  Alcotest.(check (list bool)) "same seed, same legs" (run ()) (run ())

let test_crashed_endpoint_loses_leg () =
  (* crash=8 on n=8: victim i crashes at round i, so by round 7 everyone
     is down. *)
  let faults = plan_of_spec "crash=8,crashround=0" in
  let rt = Simnet.Runtime.create ~faults ~n:8 () in
  for _ = 0 to 7 do
    ignore (Simnet.Runtime.tick rt);
    Simnet.Runtime.advance rt ~rounds:1
  done;
  Alcotest.(check bool) "node crashed" true (Simnet.Runtime.crashed rt 0);
  Alcotest.(check bool) "leg lost" false (Simnet.Runtime.leg rt ~src:0 ());
  let l = Simnet.Runtime.losses rt in
  Alcotest.(check int) "charged crash_lost" 1 l.Simnet.Runtime.crash_lost;
  (* An endpoint-free leg consults nobody and (with no link faults in the
     plan) survives. *)
  Alcotest.(check bool) "anonymous leg arrives" true (Simnet.Runtime.leg rt ())

let test_link_drop_shape () =
  let rt0 = Simnet.Runtime.create ~faults:(plan_of_spec "crash=2") ~n:8 () in
  Alcotest.(check bool)
    "crash-only plan: no link hook" true
    (Simnet.Runtime.link_drop rt0 = None);
  let rt1 = Simnet.Runtime.create ~faults:(plan_of_spec "drop=1.0") ~n:8 () in
  match Simnet.Runtime.link_drop rt1 with
  | None -> Alcotest.fail "drop plan must expose a link hook"
  | Some f -> Alcotest.(check bool) "p=1 always drops" true (f ())

(* ---------- size-independent keying ---------- *)

let test_resize_does_not_shift_stream () =
  (* The same plan on the same seed must produce the same leg outcomes
     whether or not the network grew mid-run. *)
  let outcomes resize_midway =
    let faults = plan_of_spec "drop=0.4,seed=5" in
    let rt = Simnet.Runtime.create ~faults ~n:8 () in
    let first = List.init 50 (fun _ -> Simnet.Runtime.leg rt ()) in
    if resize_midway then Simnet.Runtime.resize rt ~n:64;
    let second = List.init 50 (fun _ -> Simnet.Runtime.leg rt ()) in
    (first, second)
  in
  Alcotest.(check (pair (list bool) (list bool)))
    "growth never aliases the stream" (outcomes false) (outcomes true)

let test_crashed_bounds_guarded () =
  let faults = plan_of_spec "crash=4" in
  let rt = Simnet.Runtime.create ~faults ~n:8 () in
  (* Victim i crashes at round 1 + i; jump past all four schedules. *)
  Simnet.Runtime.advance rt ~rounds:5;
  ignore (Simnet.Runtime.tick rt);
  (* Joins past the install-time n are never crash victims, even before a
     resize widens the table. *)
  Alcotest.(check bool) "beyond n" false (Simnet.Runtime.crashed rt 100);
  Simnet.Runtime.resize rt ~n:128;
  Alcotest.(check bool)
    "still not crashed after grow" false
    (Simnet.Runtime.crashed rt 100);
  let crashed_now =
    List.length
      (List.filter (Simnet.Runtime.crashed rt) (List.init 128 Fun.id))
  in
  Alcotest.(check int) "victims preserved across resize" 4 crashed_now

(* ---------- epochs and rounds ---------- *)

let test_run_epoch_accounts_rounds () =
  let rt = Simnet.Runtime.create ~n:8 () in
  (* Driver that does not advance: run_epoch advances for it. *)
  let ep = Simnet.Runtime.run_epoch rt (fun _ -> ((), 7)) in
  Alcotest.(check int) "epoch index" 0 ep.Simnet.Runtime.index;
  Alcotest.(check int) "rounds reported" 7 ep.Simnet.Runtime.rounds;
  Alcotest.(check int) "round counter" 7 (Simnet.Runtime.round rt);
  (* Driver that advances per round: not double counted. *)
  let ep2 =
    Simnet.Runtime.run_epoch rt (fun rt ->
        for _ = 1 to 5 do
          Simnet.Runtime.advance rt ~rounds:1
        done;
        ((), 5))
  in
  Alcotest.(check int) "second epoch index" 1 ep2.Simnet.Runtime.index;
  Alcotest.(check int) "no double advance" 12 (Simnet.Runtime.round rt);
  Alcotest.(check int) "epoch count" 2 (Simnet.Runtime.epoch rt)

let test_epoch_losses_are_deltas () =
  let faults = plan_of_spec "drop=1.0" in
  let rt = Simnet.Runtime.create ~faults ~n:8 () in
  let epoch_of k =
    Simnet.Runtime.run_epoch rt (fun rt ->
        for _ = 1 to k do
          ignore (Simnet.Runtime.leg rt ())
        done;
        ((), 1))
  in
  let e1 = epoch_of 3 and e2 = epoch_of 5 in
  Alcotest.(check int)
    "first epoch dropped" 3
    e1.Simnet.Runtime.epoch_losses.Simnet.Runtime.dropped;
  Alcotest.(check int)
    "second epoch dropped" 5
    e2.Simnet.Runtime.epoch_losses.Simnet.Runtime.dropped;
  Alcotest.(check int)
    "running total" 8
    (Simnet.Runtime.losses rt).Simnet.Runtime.dropped

(* ---------- scenario parsing ---------- *)

let scenario_ok spec =
  match Simnet.Scenario.parse spec with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "scenario %S rejected: %s" spec e

let test_scenario_parse () =
  let sc = scenario_ok "n=4096;seed=7;faults=drop=0.05,crash=2;retry=3" in
  Alcotest.(check int) "n" 4096 sc.Simnet.Scenario.n;
  Alcotest.(check int) "seed" 7 sc.Simnet.Scenario.seed;
  Alcotest.(check int) "retry" 3 sc.Simnet.Scenario.retry;
  (match sc.Simnet.Scenario.faults with
  | None -> Alcotest.fail "faults sub-spec lost"
  | Some p ->
      Alcotest.(check (float 1e-9)) "drop" 0.05 p.Simnet.Faults.drop;
      Alcotest.(check int) "crash" 2 p.Simnet.Faults.crash);
  Alcotest.(check bool)
    "fault model active" true
    (Simnet.Scenario.fault_model_active sc);
  Alcotest.(check bool)
    "default inactive" false
    (Simnet.Scenario.fault_model_active Simnet.Scenario.default)

let test_scenario_roundtrip () =
  let sc = scenario_ok "n=512;d=4;sampler=plain;frac=0.25;trace=/tmp/x.jsonl" in
  let sc' = scenario_ok (Simnet.Scenario.to_spec sc) in
  Alcotest.(check bool) "to_spec round-trips" true (sc = sc')

let test_scenario_rejects () =
  let rejects spec needle =
    match Simnet.Scenario.parse spec with
    | Ok _ -> Alcotest.failf "scenario %S accepted" spec
    | Error e ->
        let found =
          let nl = String.length needle and el = String.length e in
          let rec scan i =
            i + nl <= el && (String.sub e i nl = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions %S (got %S)" spec needle e)
          true found
  in
  rejects "bogus=1" "bogus";
  rejects "n=0" "n";
  rejects "retry=-1" "retry";
  rejects "frac=1.5" "frac";
  rejects "n" "KEY=VALUE";
  rejects "faults=drop=nope" "faults"

let () =
  Alcotest.run "simnet-runtime"
    [
      ( "features",
        [
          Alcotest.test_case "unsupported rejected" `Quick
            test_unsupported_feature_rejected;
          Alcotest.test_case "supported installs" `Quick
            test_supported_plan_installs;
          Alcotest.test_case "inert plan skipped" `Quick
            test_inert_plan_not_installed;
        ] );
      ( "legs",
        [
          Alcotest.test_case "losses accounted" `Quick
            test_leg_losses_accounted;
          Alcotest.test_case "deterministic" `Quick test_leg_deterministic;
          Alcotest.test_case "crashed endpoint" `Quick
            test_crashed_endpoint_loses_leg;
          Alcotest.test_case "link_drop shape" `Quick test_link_drop_shape;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "resize keeps stream" `Quick
            test_resize_does_not_shift_stream;
          Alcotest.test_case "crashed bounds-guarded" `Quick
            test_crashed_bounds_guarded;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "rounds accounted once" `Quick
            test_run_epoch_accounts_rounds;
          Alcotest.test_case "losses are deltas" `Quick
            test_epoch_losses_are_deltas;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "parse" `Quick test_scenario_parse;
          Alcotest.test_case "round-trip" `Quick test_scenario_roundtrip;
          Alcotest.test_case "reject" `Quick test_scenario_rejects;
        ] );
    ]
