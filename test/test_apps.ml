(* Tests for the Section 7 applications: anonymizer, robust DHT, pub-sub. *)

let rng () = Testutil.rng ()

let make_dos_net ?(n = 2048) () =
  let s = rng () in
  Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n ()

(* ---------- Anonymizer (Corollary 2) ---------- *)

let test_anonymizer_unattacked () =
  let net = make_dos_net () in
  let a = Apps.Anonymizer.create ~net ~rng:(rng ()) in
  let blocked = Array.make (Core.Dos_network.n net) false in
  for _ = 1 to 100 do
    let r = Apps.Anonymizer.request a ~blocked in
    Alcotest.(check bool) "delivered" true r.Apps.Anonymizer.delivered;
    Alcotest.(check int) "O(1) rounds" 4 r.Apps.Anonymizer.rounds;
    Alcotest.(check bool) "has exit" true (r.Apps.Anonymizer.exit_server <> None)
  done

let test_anonymizer_under_blocking () =
  let net = make_dos_net () in
  let a = Apps.Anonymizer.create ~net ~rng:(rng ()) in
  let n = Core.Dos_network.n net in
  let s = rng () in
  let delivered = ref 0 in
  let trials = 200 in
  for _ = 1 to trials do
    let blocked = Array.make n false in
    Array.iter
      (fun v -> blocked.(v) <- true)
      (Prng.Stream.sample_distinct s n ~k:(n / 4));
    if (Apps.Anonymizer.request a ~blocked).Apps.Anonymizer.delivered then
      incr delivered
  done;
  (* group sizes ~ 2 c log n = 44; P(whole destination group blocked) tiny *)
  Alcotest.(check int)
    (Printf.sprintf "all %d delivered under random 25%% blocking" trials)
    trials !delivered

let test_anonymizer_blocked_entry_fails () =
  let net = make_dos_net () in
  let a = Apps.Anonymizer.create ~net ~rng:(rng ()) in
  let n = Core.Dos_network.n net in
  let blocked = Array.make n false in
  blocked.(17) <- true;
  let r = Apps.Anonymizer.request_via a ~blocked ~entry:17 in
  Alcotest.(check bool) "fails fast" false r.Apps.Anonymizer.delivered;
  Alcotest.(check int) "one round" 1 r.Apps.Anonymizer.rounds

let test_anonymizer_exit_group_matches_entry () =
  let net = make_dos_net () in
  let a = Apps.Anonymizer.create ~net ~rng:(rng ()) in
  let n = Core.Dos_network.n net in
  let blocked = Array.make n false in
  let group_of = Core.Dos_network.group_of net in
  for entry = 0 to 20 do
    let r = Apps.Anonymizer.request_via a ~blocked ~entry in
    match (r.Apps.Anonymizer.exit_server, r.Apps.Anonymizer.exit_group) with
    | Some exit, Some g ->
        Alcotest.(check int) "exit in destination group" group_of.(entry) g;
        Alcotest.(check int) "exit server in that group" g group_of.(exit);
        Alcotest.(check bool) "exit is not the entry" true (exit <> entry)
    | _ -> Alcotest.fail "expected delivery"
  done

let test_anonymizer_exit_entropy () =
  (* Anonymity: over many requests, the exit group is (near) uniform over
     the supernodes. *)
  let net = make_dos_net ~n:4096 () in
  let a = Apps.Anonymizer.create ~net ~rng:(rng ()) in
  let n = Core.Dos_network.n net in
  let blocked = Array.make n false in
  let counts = Array.make (Core.Dos_network.supernode_count net) 0 in
  for _ = 1 to 20_000 do
    match (Apps.Anonymizer.request a ~blocked).Apps.Anonymizer.exit_group with
    | Some g -> counts.(g) <- counts.(g) + 1
    | None -> Alcotest.fail "expected delivery"
  done;
  (* entry servers are uniform; groups have slightly varying sizes, so the
     exit group is size-weighted — demand high normalized entropy rather
     than exact uniformity *)
  Alcotest.(check bool) "normalized exit entropy > 0.98" true
    (Stats.Entropy.normalized_of_counts counts > 0.98)

(* ---------- Robust DHT (Theorem 8) ---------- *)

let make_dht ?(n = 2048) ?(k = 4) () =
  let s = rng () in
  Apps.Robust_dht.create ~k ~rng:(Prng.Stream.split s) ~n ()

let test_dht_structure () =
  let dht = make_dht () in
  Alcotest.(check int) "arity" 4 (Apps.Robust_dht.k dht);
  let kd = Apps.Robust_dht.supernode_count dht in
  Alcotest.(check bool) "k^d <= n / log n" true
    (float_of_int kd <= 2048.0 /. 11.0);
  Alcotest.(check int) "k^d" kd
    (int_of_float (4.0 ** float_of_int (Apps.Robust_dht.dimension dht)))

let test_dht_read_your_writes () =
  let dht = make_dht () in
  let blocked = Array.make (Apps.Robust_dht.n dht) false in
  for key = 0 to 99 do
    let w =
      Apps.Robust_dht.execute dht ~blocked
        (Apps.Robust_dht.Write (key, Printf.sprintf "value-%d" key))
    in
    Alcotest.(check bool) "write ok" true w.Apps.Robust_dht.ok
  done;
  for key = 0 to 99 do
    let r = Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read key) in
    Alcotest.(check (option string)) "read back"
      (Some (Printf.sprintf "value-%d" key))
      r.Apps.Robust_dht.value;
    Alcotest.(check bool) "hops within diameter" true
      (r.Apps.Robust_dht.hops <= Apps.Robust_dht.dimension dht)
  done

let test_dht_missing_key () =
  let dht = make_dht () in
  let blocked = Array.make (Apps.Robust_dht.n dht) false in
  let r = Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read 424242) in
  Alcotest.(check bool) "routed fine" true r.Apps.Robust_dht.ok;
  Alcotest.(check (option string)) "no value" None r.Apps.Robust_dht.value

let test_dht_survives_reshuffle () =
  (* The RoBuSt insight carried over: data is keyed to supernodes, so
     reconfiguring the groups does not lose it. *)
  let dht = make_dht () in
  let blocked = Array.make (Apps.Robust_dht.n dht) false in
  ignore
    (Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Write (7, "seven")));
  let before = Apps.Robust_dht.group_of dht in
  Apps.Robust_dht.reshuffle dht;
  let after = Apps.Robust_dht.group_of dht in
  Alcotest.(check bool) "groups changed" true (before <> after);
  let r = Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read 7) in
  Alcotest.(check (option string)) "data survived" (Some "seven")
    r.Apps.Robust_dht.value

let test_dht_under_light_blocking () =
  (* Theorem 8's regime: at most gamma n^(1/loglog n) blocked servers — far
     fewer than a group, so everything is served. *)
  let dht = make_dht ~n:4096 () in
  let n = Apps.Robust_dht.n dht in
  let s = rng () in
  let budget = int_of_float (2.0 *. Float.pow (float_of_int n) (1.0 /. 3.58)) in
  let blocked = Array.make n false in
  Array.iter
    (fun v -> blocked.(v) <- true)
    (Prng.Stream.sample_distinct s n ~k:budget);
  let ops =
    List.init 500 (fun i ->
        if i mod 2 = 0 then Apps.Robust_dht.Write (i, string_of_int i)
        else Apps.Robust_dht.Read (i - 1))
  in
  let b = Apps.Robust_dht.execute_batch dht ~blocked ops in
  Alcotest.(check int) "all served" 500 b.Apps.Robust_dht.served;
  Alcotest.(check bool) "hops bounded by diameter" true
    (b.Apps.Robust_dht.max_hops <= Apps.Robust_dht.dimension dht);
  Alcotest.(check bool) "congestion polylog-ish" true
    (b.Apps.Robust_dht.max_group_load < 500)

let test_dht_heavy_blocking_can_fail () =
  (* Control: blocking beyond the theorem's budget can starve groups. *)
  let dht = make_dht ~n:256 ~k:2 () in
  let n = Apps.Robust_dht.n dht in
  (* kill every member of the responsible group for key 0 *)
  let target = Apps.Robust_dht.supernode_of_key dht 0 in
  let blocked = Array.make n false in
  Array.iteri
    (fun v g -> if g = target then blocked.(v) <- true)
    (Apps.Robust_dht.group_of dht);
  let r = Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read 0) in
  Alcotest.(check bool) "request fails" false r.Apps.Robust_dht.ok

let test_dht_hash_stable_and_in_range () =
  let dht = make_dht () in
  for key = 0 to 999 do
    let a = Apps.Robust_dht.supernode_of_key dht key in
    let b = Apps.Robust_dht.supernode_of_key dht key in
    Alcotest.(check int) "deterministic" a b;
    Alcotest.(check bool) "in range" true
      (a >= 0 && a < Apps.Robust_dht.supernode_count dht)
  done

let test_dht_random_entry_all_blocked () =
  let dht = make_dht ~n:256 () in
  let blocked = Array.make (Apps.Robust_dht.n dht) true in
  Alcotest.(check (option int)) "no entry exists" None
    (Apps.Robust_dht.random_entry dht ~blocked);
  (* the bounded rejection sampling must fall back to the survivor scan,
     not spin forever, and then find nothing *)
  let s = rng () in
  Alcotest.(check (option int)) "caller stream variant" None
    (Apps.Robust_dht.random_entry_with dht ~rng:(Prng.Stream.split s) ~blocked)

let test_dht_random_entry_one_survivor () =
  let dht = make_dht ~n:256 () in
  let n = Apps.Robust_dht.n dht in
  let survivor = 137 in
  let blocked = Array.make n true in
  blocked.(survivor) <- false;
  let s = rng () in
  (* far beyond the 30-draw rejection bound: every pick must land on the
     single non-blocked server via the scan fallback *)
  for _ = 1 to 50 do
    Alcotest.(check (option int)) "only survivor" (Some survivor)
      (Apps.Robust_dht.random_entry_with dht ~rng:s ~blocked)
  done

let test_dht_random_entry_unblocked_is_cheap_draw () =
  (* with nothing blocked the first draw is accepted, so two equal streams
     yield the exact same entry sequence as plain bounded draws *)
  let dht = make_dht ~n:256 () in
  let n = Apps.Robust_dht.n dht in
  let blocked = Array.make n false in
  let seed = 0xFEED_0123L in
  let a = Prng.Stream.of_seed seed and b = Prng.Stream.of_seed seed in
  for _ = 1 to 100 do
    Alcotest.(check (option int)) "one draw per entry"
      (Some (Prng.Stream.int b n))
      (Apps.Robust_dht.random_entry_with dht ~rng:a ~blocked)
  done

(* ---------- Pub-sub ---------- *)

let make_pubsub () =
  let dht = make_dht () in
  (Apps.Pubsub.create ~dht, Array.make (Apps.Robust_dht.n dht) false)

let test_pubsub_publish_fetch () =
  let ps, blocked = make_pubsub () in
  Alcotest.(check (option int)) "fresh topic" (Some 0)
    (Apps.Pubsub.last_seq ps ~blocked ~topic:5);
  Alcotest.(check (option int)) "first publication" (Some 1)
    (Apps.Pubsub.publish ps ~blocked ~topic:5 ~payload:"a");
  Alcotest.(check (option int)) "second" (Some 2)
    (Apps.Pubsub.publish ps ~blocked ~topic:5 ~payload:"b");
  Alcotest.(check (option (list string))) "fetch all" (Some [ "a"; "b" ])
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:5 ~since:0);
  Alcotest.(check (option (list string))) "fetch since 1" (Some [ "b" ])
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:5 ~since:1);
  Alcotest.(check (option (list string))) "fetch up to date" (Some [])
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:5 ~since:2)

let test_pubsub_topics_isolated () =
  let ps, blocked = make_pubsub () in
  ignore (Apps.Pubsub.publish ps ~blocked ~topic:1 ~payload:"t1");
  ignore (Apps.Pubsub.publish ps ~blocked ~topic:2 ~payload:"t2");
  Alcotest.(check (option (list string))) "topic 1" (Some [ "t1" ])
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:1 ~since:0);
  Alcotest.(check (option (list string))) "topic 2" (Some [ "t2" ])
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:2 ~since:0)

let test_pubsub_batch_aggregation () =
  let ps, blocked = make_pubsub () in
  let items =
    List.concat_map
      (fun topic -> List.init 5 (fun i -> (topic, Printf.sprintf "%d-%d" topic i)))
      [ 10; 11; 12 ]
  in
  let published, failed = Apps.Pubsub.publish_batch ps ~blocked items in
  Alcotest.(check int) "all published" 15 published;
  Alcotest.(check int) "none failed" 0 failed;
  List.iter
    (fun topic ->
      Alcotest.(check (option int)) "counter advanced" (Some 5)
        (Apps.Pubsub.last_seq ps ~blocked ~topic);
      match Apps.Pubsub.fetch_since ps ~blocked ~topic ~since:0 with
      | None -> Alcotest.fail "fetch failed"
      | Some msgs ->
          Alcotest.(check int) "five messages" 5 (List.length msgs);
          (* order preserved *)
          Alcotest.(check string) "first" (Printf.sprintf "%d-0" topic)
            (List.hd msgs))
    [ 10; 11; 12 ]

let test_pubsub_exactly_once_ordered () =
  let ps, blocked = make_pubsub () in
  for i = 1 to 50 do
    ignore (Apps.Pubsub.publish ps ~blocked ~topic:99 ~payload:(string_of_int i))
  done;
  match Apps.Pubsub.fetch_since ps ~blocked ~topic:99 ~since:0 with
  | None -> Alcotest.fail "fetch failed"
  | Some msgs ->
      Alcotest.(check (list string)) "all messages, in order, exactly once"
        (List.init 50 (fun i -> string_of_int (i + 1)))
        msgs

(* Regression: a sequence number past 2^20 - 1 used to carry into the topic
   bits and silently collide with the next topic's key space; now every
   publish path raises the typed [Topic_full] before any write happens. *)

let make_pubsub_with_dht () =
  let dht = make_dht () in
  ( Apps.Pubsub.create ~dht,
    dht,
    Array.make (Apps.Robust_dht.n dht) false )

let set_counter dht ~blocked ~topic m =
  let w =
    Apps.Robust_dht.execute dht ~blocked
      (Apps.Robust_dht.Write (Apps.Pubsub.counter_key topic, string_of_int m))
  in
  Alcotest.(check bool) "counter primed" true w.Apps.Robust_dht.ok

let test_pubsub_topic_full_publish () =
  let ps, dht, blocked = make_pubsub_with_dht () in
  let topic = 7 in
  set_counter dht ~blocked ~topic Apps.Pubsub.max_seq;
  Alcotest.check_raises "publish past capacity"
    (Apps.Pubsub.Topic_full { topic; seq = Apps.Pubsub.max_seq + 1 })
    (fun () -> ignore (Apps.Pubsub.publish ps ~blocked ~topic ~payload:"x"));
  (* the next topic's key space is untouched: its counter still reads 0 and
     the last in-range composite of topic 7 stays below it *)
  Alcotest.(check (option int)) "next topic isolated" (Some 0)
    (Apps.Pubsub.last_seq ps ~blocked ~topic:(topic + 1));
  Alcotest.(check bool) "composite stays inside the topic's space" true
    (Apps.Pubsub.composite topic Apps.Pubsub.max_seq
    < Apps.Pubsub.counter_key (topic + 1))

let test_pubsub_topic_full_batch_before_write () =
  let ps, dht, blocked = make_pubsub_with_dht () in
  let topic = 9 in
  let m = Apps.Pubsub.max_seq - 2 in
  set_counter dht ~blocked ~topic m;
  let items = List.init 5 (fun i -> (topic, Printf.sprintf "p%d" i)) in
  Alcotest.check_raises "batch overflow detected up front"
    (Apps.Pubsub.Topic_full { topic; seq = m + 5 })
    (fun () -> ignore (Apps.Pubsub.publish_batch ps ~blocked items));
  (* raised before any write: counter unchanged, no payload stored *)
  Alcotest.(check (option int)) "counter unchanged" (Some m)
    (Apps.Pubsub.last_seq ps ~blocked ~topic);
  Alcotest.(check (option string)) "no partial publication" None
    (Apps.Robust_dht.peek dht (Apps.Pubsub.composite topic (m + 1)))

let test_pubsub_composite_raises () =
  Alcotest.check_raises "composite past max_seq"
    (Apps.Pubsub.Topic_full { topic = 3; seq = Apps.Pubsub.max_seq + 1 })
    (fun () ->
      ignore (Apps.Pubsub.composite 3 (Apps.Pubsub.max_seq + 1)));
  Alcotest.check_raises "negative still Invalid_argument"
    (Invalid_argument "Pubsub: key out of range") (fun () ->
      ignore (Apps.Pubsub.composite 3 (-1)))

let test_pubsub_under_blocking () =
  let ps, blocked = make_pubsub () in
  let n = Array.length blocked in
  let s = rng () in
  Array.iter
    (fun v -> blocked.(v) <- true)
    (Prng.Stream.sample_distinct s n ~k:(n / 20));
  ignore (Apps.Pubsub.publish ps ~blocked ~topic:3 ~payload:"x");
  Alcotest.(check (option (list string))) "works under light blocking"
    (Some [ "x" ])
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:3 ~since:0)

(* ---------- Butterfly aggregation (Section 7.3) ---------- *)

let test_butterfly_correctness () =
  let cube = Topology.Kary_hypercube.create ~k:3 ~d:3 in
  let supernodes = Topology.Kary_hypercube.node_count cube in
  let dest_of_key key = key * 7 mod supernodes in
  let s = rng () in
  (* random contributions; compute expected totals naively *)
  let contributions = Array.make supernodes [] in
  let expected = Hashtbl.create 32 in
  for x = 0 to supernodes - 1 do
    for _ = 1 to 5 do
      let key = Prng.Stream.int s 12 in
      let count = 1 + Prng.Stream.int s 4 in
      contributions.(x) <- (key, count) :: contributions.(x);
      Hashtbl.replace expected key
        (count + Option.value ~default:0 (Hashtbl.find_opt expected key))
    done
  done;
  let totals, stats = Apps.Butterfly.aggregate ~cube ~dest_of_key ~contributions in
  Alcotest.(check int) "phases = d" 3 stats.Apps.Butterfly.phases;
  Hashtbl.iter
    (fun key total ->
      let dest = dest_of_key key in
      Alcotest.(check (option int))
        (Printf.sprintf "key %d total at owner %d" key dest)
        (Some total)
        (Hashtbl.find_opt totals.(dest) key))
    expected;
  (* nothing stranded elsewhere *)
  Array.iteri
    (fun x tbl ->
      Hashtbl.iter
        (fun key _ ->
          Alcotest.(check int) "only owned keys present" x (dest_of_key key))
        tbl)
    totals

let test_butterfly_hot_key_congestion () =
  (* One hot key contributed by every supernode: combining caps the owner's
     load at (k-1) messages in the final phase, vs one per contributor
     without combining. *)
  let cube = Topology.Kary_hypercube.create ~k:4 ~d:4 in
  let supernodes = Topology.Kary_hypercube.node_count cube in
  let contributions = Array.make supernodes [ (42, 1) ] in
  let dest_of_key _ = 0 in
  let totals, stats = Apps.Butterfly.aggregate ~cube ~dest_of_key ~contributions in
  Alcotest.(check (option int)) "all combined" (Some supernodes)
    (Hashtbl.find_opt totals.(0) 42);
  let naive =
    Apps.Butterfly.naive_max_load ~cube ~dest_of_key ~contributions
  in
  Alcotest.(check int) "naive load = one per contributor" (supernodes - 1) naive;
  Alcotest.(check bool)
    (Printf.sprintf "combined load %d << naive %d" stats.Apps.Butterfly.max_phase_load naive)
    true
    (stats.Apps.Butterfly.max_phase_load * 4 < naive);
  Alcotest.(check bool) "combines happened" true (stats.Apps.Butterfly.combines > 0)

let test_butterfly_empty_and_zero () =
  let cube = Topology.Kary_hypercube.create ~k:2 ~d:3 in
  let supernodes = Topology.Kary_hypercube.node_count cube in
  let contributions = Array.make supernodes [] in
  contributions.(1) <- [ (5, 0) ];
  (* zero counts dropped *)
  let totals, stats =
    Apps.Butterfly.aggregate ~cube ~dest_of_key:(fun _ -> 0) ~contributions
  in
  Alcotest.(check int) "no messages" 0 stats.Apps.Butterfly.messages;
  Array.iter
    (fun tbl -> Alcotest.(check int) "all empty" 0 (Hashtbl.length tbl))
    totals

let test_pubsub_aggregated_end_to_end () =
  let ps, blocked = make_pubsub () in
  let items =
    List.concat_map
      (fun topic -> List.init 8 (fun i -> (topic, Printf.sprintf "%d:%d" topic i)))
      [ 70; 71; 72 ]
  in
  let (published, failed), stats =
    Apps.Pubsub.publish_batch_aggregated ps ~blocked items
  in
  Alcotest.(check int) "all published" 24 published;
  Alcotest.(check int) "none failed" 0 failed;
  Alcotest.(check bool) "aggregation ran" true (stats.Apps.Butterfly.phases > 0);
  List.iter
    (fun topic ->
      Alcotest.(check (option int)) "counter" (Some 8)
        (Apps.Pubsub.last_seq ps ~blocked ~topic);
      match Apps.Pubsub.fetch_since ps ~blocked ~topic ~since:0 with
      | Some msgs ->
          Alcotest.(check int) "all fetchable" 8 (List.length msgs);
          Alcotest.(check string) "order preserved"
            (Printf.sprintf "%d:0" topic) (List.hd msgs)
      | None -> Alcotest.fail "fetch failed")
    [ 70; 71; 72 ]

let test_pubsub_aggregated_matches_direct () =
  (* Same publications through both paths on separate topics must yield the
     same counters and fetchable streams. *)
  let ps, blocked = make_pubsub () in
  let mk topic = List.init 10 (fun i -> (topic, string_of_int i)) in
  let p1, f1 = Apps.Pubsub.publish_batch ps ~blocked (mk 80) in
  let (p2, f2), _ = Apps.Pubsub.publish_batch_aggregated ps ~blocked (mk 81) in
  Alcotest.(check (pair int int)) "same outcome" (p1, f1) (p2, f2);
  Alcotest.(check bool) "same streams" true
    (Apps.Pubsub.fetch_since ps ~blocked ~topic:80 ~since:0
    = Apps.Pubsub.fetch_since ps ~blocked ~topic:81 ~since:0)

(* ---------- Staged butterfly router (Section 7.2) ---------- *)

let test_staged_reads_correct () =
  let dht = make_dht () in
  let blocked = Array.make (Apps.Robust_dht.n dht) false in
  for key = 0 to 49 do
    ignore
      (Apps.Robust_dht.execute dht ~blocked
         (Apps.Robust_dht.Write (key, Printf.sprintf "v%d" key)))
  done;
  let keys = Array.init 100 (fun i -> i mod 60) in
  let results, stats = Apps.Staged_router.read_batch ~dht ~blocked ~keys in
  Alcotest.(check int) "stages = d" (Apps.Robust_dht.dimension dht)
    stats.Apps.Staged_router.stages;
  Alcotest.(check int) "none failed" 0 stats.Apps.Staged_router.failed;
  Array.iteri
    (fun i key ->
      let expected = if key < 50 then Some (Printf.sprintf "v%d" key) else None in
      Alcotest.(check (option string))
        (Printf.sprintf "request %d (key %d)" i key)
        expected results.(i))
    keys

let test_staged_hot_key_combining () =
  let dht = make_dht ~n:4096 () in
  let blocked = Array.make 4096 false in
  ignore
    (Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Write (7, "hot")));
  let keys = Array.make 2000 7 in
  let results, stats = Apps.Staged_router.read_batch ~dht ~blocked ~keys in
  Array.iter
    (fun r -> Alcotest.(check (option string)) "every rider served" (Some "hot") r)
    results;
  let naive = Apps.Staged_router.naive_service_rounds ~dht ~keys in
  Alcotest.(check bool)
    (Printf.sprintf "combined service %d << naive %d"
       stats.Apps.Staged_router.service_rounds naive)
    true
    (stats.Apps.Staged_router.service_rounds * 10 < naive);
  Alcotest.(check bool) "combines happened" true
    (stats.Apps.Staged_router.combined > 1000)

let test_staged_starved_path_fails () =
  (* The butterfly's fixed dimension order cannot detour: kill a group on
     the unique stage-0 path of a key and its requests die. *)
  let dht = make_dht ~n:512 ~k:2 () in
  let n = Apps.Robust_dht.n dht in
  let key = 3 in
  let dest = Apps.Robust_dht.supernode_of_key dht key in
  (* block the whole destination group: every request must fail *)
  let blocked = Array.make n false in
  Array.iter
    (fun v -> blocked.(v) <- true)
    (Apps.Robust_dht.group_members dht dest);
  let keys = Array.make 10 key in
  let results, stats = Apps.Staged_router.read_batch ~dht ~blocked ~keys in
  Alcotest.(check bool) "some requests failed" true
    (stats.Apps.Staged_router.failed > 0);
  Array.iter
    (fun r -> Alcotest.(check (option string)) "no value" None r)
    results

let test_pubsub_fetch_batch () =
  let ps, blocked = make_pubsub () in
  (* two topics with different backlogs *)
  for i = 1 to 6 do
    ignore (Apps.Pubsub.publish ps ~blocked ~topic:90 ~payload:(Printf.sprintf "a%d" i))
  done;
  for i = 1 to 3 do
    ignore (Apps.Pubsub.publish ps ~blocked ~topic:91 ~payload:(Printf.sprintf "b%d" i))
  done;
  (* a thousand subscribers of topic 90 (hot), a few of 91, one up to date,
     one of a fresh topic *)
  let subscribers =
    List.init 1000 (fun _ -> (90, 2))
    @ [ (91, 0); (91, 2); (90, 6); (92, 0) ]
  in
  let results, stats = Apps.Pubsub.fetch_batch ps ~blocked subscribers in
  Alcotest.(check int) "no failures" 0 stats.Apps.Staged_router.failed;
  for i = 0 to 999 do
    Alcotest.(check (option (list string))) "hot subscriber backlog"
      (Some [ "a3"; "a4"; "a5"; "a6" ]) results.(i)
  done;
  Alcotest.(check (option (list string))) "full topic 91"
    (Some [ "b1"; "b2"; "b3" ]) results.(1000);
  Alcotest.(check (option (list string))) "partial topic 91" (Some [ "b3" ])
    results.(1001);
  Alcotest.(check (option (list string))) "up to date" (Some []) results.(1002);
  Alcotest.(check (option (list string))) "fresh topic" (Some []) results.(1003);
  (* the hot topic's four keys were read once each, not a thousand times *)
  Alcotest.(check bool)
    (Printf.sprintf "dedup kept batch small (%d messages)"
       stats.Apps.Staged_router.total_messages)
    true
    (stats.Apps.Staged_router.total_messages < 100)

(* ---------- properties ---------- *)

let qcheck_staged_matches_peek =
  QCheck.Test.make ~name:"staged router agrees with direct store lookups"
    ~count:10
    QCheck.(pair int64 (int_range 1 60))
    (fun (seed, nkeys) ->
      let s = Prng.Stream.of_seed seed in
      let dht = Apps.Robust_dht.create ~rng:(Prng.Stream.split s) ~n:512 () in
      let blocked = Array.make 512 false in
      for key = 0 to 29 do
        ignore
          (Apps.Robust_dht.execute dht ~blocked
             (Apps.Robust_dht.Write (key, string_of_int key)))
      done;
      let keys = Array.init nkeys (fun _ -> Prng.Stream.int s 40) in
      let results, stats = Apps.Staged_router.read_batch ~dht ~blocked ~keys in
      stats.Apps.Staged_router.failed = 0
      && Array.for_all
           (fun i -> results.(i) = Apps.Robust_dht.peek dht keys.(i))
           (Array.init nkeys (fun i -> i)))

let qcheck_butterfly_totals_conserved =
  QCheck.Test.make ~name:"butterfly conserves every key's total" ~count:50
    QCheck.(pair int64 (int_range 2 4))
    (fun (seed, k) ->
      let cube = Topology.Kary_hypercube.create ~k ~d:3 in
      let supernodes = Topology.Kary_hypercube.node_count cube in
      let s = Prng.Stream.of_seed seed in
      let contributions =
        Array.init supernodes (fun _ ->
            List.init (Prng.Stream.int s 4) (fun _ ->
                (Prng.Stream.int s 9, 1 + Prng.Stream.int s 3)))
      in
      let grand_total =
        Array.fold_left
          (fun acc l -> List.fold_left (fun a (_, c) -> a + c) acc l)
          0 contributions
      in
      let dest_of_key key = key mod supernodes in
      let totals, _ =
        Apps.Butterfly.aggregate ~cube ~dest_of_key ~contributions
      in
      let collected =
        Array.fold_left
          (fun acc tbl -> Hashtbl.fold (fun _ c a -> a + c) tbl acc)
          0 totals
      in
      collected = grand_total)

let qcheck_dht_read_your_writes =
  QCheck.Test.make ~name:"DHT read-your-writes under random blocking"
    ~count:10
    QCheck.(pair int64 (int_range 0 50))
    (fun (seed, blocked_count) ->
      let s = Prng.Stream.of_seed seed in
      let dht = Apps.Robust_dht.create ~rng:(Prng.Stream.split s) ~n:512 () in
      let n = Apps.Robust_dht.n dht in
      let blocked = Array.make n false in
      Array.iter
        (fun v -> blocked.(v) <- true)
        (Prng.Stream.sample_distinct s n ~k:(min blocked_count (n / 8)));
      let ok = ref true in
      for key = 0 to 19 do
        let w =
          Apps.Robust_dht.execute dht ~blocked
            (Apps.Robust_dht.Write (key, string_of_int key))
        in
        let r = Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read key) in
        if not (w.Apps.Robust_dht.ok && r.Apps.Robust_dht.value = Some (string_of_int key))
        then ok := false
      done;
      !ok)

let qcheck_pubsub_counter_monotone =
  QCheck.Test.make ~name:"pub-sub counters are monotone" ~count:10
    QCheck.(pair int64 (int_range 1 20))
    (fun (seed, publications) ->
      let s = Prng.Stream.of_seed seed in
      let dht = Apps.Robust_dht.create ~rng:(Prng.Stream.split s) ~n:512 () in
      let ps = Apps.Pubsub.create ~dht in
      let blocked = Array.make (Apps.Robust_dht.n dht) false in
      let ok = ref true in
      let last = ref 0 in
      for i = 1 to publications do
        match Apps.Pubsub.publish ps ~blocked ~topic:1 ~payload:(string_of_int i) with
        | Some seq ->
            if seq <= !last then ok := false;
            last := seq
        | None -> ok := false
      done;
      !ok && !last = publications)

let () =
  Alcotest.run "apps"
    [
      ( "anonymizer",
        [
          Alcotest.test_case "unattacked delivery" `Quick
            test_anonymizer_unattacked;
          Alcotest.test_case "random blocking" `Quick
            test_anonymizer_under_blocking;
          Alcotest.test_case "blocked entry fails" `Quick
            test_anonymizer_blocked_entry_fails;
          Alcotest.test_case "exit in destination group" `Quick
            test_anonymizer_exit_group_matches_entry;
          Alcotest.test_case "exit entropy (anonymity)" `Slow
            test_anonymizer_exit_entropy;
        ] );
      ( "robust-dht",
        [
          Alcotest.test_case "structure" `Quick test_dht_structure;
          Alcotest.test_case "read your writes" `Quick test_dht_read_your_writes;
          Alcotest.test_case "missing key" `Quick test_dht_missing_key;
          Alcotest.test_case "survives reshuffle" `Quick
            test_dht_survives_reshuffle;
          Alcotest.test_case "light blocking (Thm 8 regime)" `Slow
            test_dht_under_light_blocking;
          Alcotest.test_case "heavy blocking fails (control)" `Quick
            test_dht_heavy_blocking_can_fail;
          Alcotest.test_case "hash stable" `Quick test_dht_hash_stable_and_in_range;
          Alcotest.test_case "random entry: all blocked" `Quick
            test_dht_random_entry_all_blocked;
          Alcotest.test_case "random entry: one survivor" `Quick
            test_dht_random_entry_one_survivor;
          Alcotest.test_case "random entry: O(1) draw unblocked" `Quick
            test_dht_random_entry_unblocked_is_cheap_draw;
        ] );
      ( "pubsub",
        [
          Alcotest.test_case "publish/fetch" `Quick test_pubsub_publish_fetch;
          Alcotest.test_case "topics isolated" `Quick test_pubsub_topics_isolated;
          Alcotest.test_case "batch aggregation" `Quick
            test_pubsub_batch_aggregation;
          Alcotest.test_case "exactly once, ordered" `Quick
            test_pubsub_exactly_once_ordered;
          Alcotest.test_case "under blocking" `Quick test_pubsub_under_blocking;
          Alcotest.test_case "topic full: publish raises typed" `Quick
            test_pubsub_topic_full_publish;
          Alcotest.test_case "topic full: batch raises before write" `Quick
            test_pubsub_topic_full_batch_before_write;
          Alcotest.test_case "topic full: composite guards" `Quick
            test_pubsub_composite_raises;
          Alcotest.test_case "combined fetch batch" `Quick
            test_pubsub_fetch_batch;
        ] );
      ( "staged-router",
        [
          Alcotest.test_case "reads correct" `Quick test_staged_reads_correct;
          Alcotest.test_case "hot-key combining" `Quick
            test_staged_hot_key_combining;
          Alcotest.test_case "starved path fails" `Quick
            test_staged_starved_path_fails;
        ] );
      ( "butterfly",
        [
          Alcotest.test_case "correctness" `Quick test_butterfly_correctness;
          Alcotest.test_case "hot-key congestion" `Quick
            test_butterfly_hot_key_congestion;
          Alcotest.test_case "empty/zero contributions" `Quick
            test_butterfly_empty_and_zero;
          Alcotest.test_case "aggregated publish end-to-end" `Quick
            test_pubsub_aggregated_end_to_end;
          Alcotest.test_case "aggregated matches direct" `Quick
            test_pubsub_aggregated_matches_direct;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_dht_read_your_writes;
            qcheck_pubsub_counter_monotone;
            qcheck_butterfly_totals_conserved;
            qcheck_staged_matches_peek;
          ] );
    ]
