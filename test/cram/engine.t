The sharded engine core's determinism contract: the worker-domain count
and the shard width are pure tuning knobs, never semantic ones.  A
faulted churn run's compact binary trace is byte-identical whether the
rounds execute on 1 domain or 4:

  $ ../../bin/overlay_sim.exe churn -n 256 --epochs 3 --seed 11 --faults 'drop=0.05,delay=2,crash=2,seed=9' --retry 2 --domains 1 --trace c1.bin > out1.txt
  $ ../../bin/overlay_sim.exe churn -n 256 --epochs 3 --seed 11 --faults 'drop=0.05,delay=2,crash=2,seed=9' --retry 2 --domains 4 --trace c4.bin > out4.txt
  $ cmp c1.bin c4.bin && echo trace-identical
  trace-identical
  $ cmp out1.txt out4.txt && echo output-identical
  output-identical

The same holds with real multi-shard traffic: OVERLAY_SHARD_BITS=8 splits
the n=512 group simulation (every physical message goes through the
engine) into two destination shards, and neither the shard split nor the
domain count moves a byte relative to the default single-shard layout:

  $ ../../bin/overlay_sim.exe groupsim -n 512 --seed 7 --domains 1 --trace g_ref.bin > gs_ref.txt
  $ OVERLAY_SHARD_BITS=8 ../../bin/overlay_sim.exe groupsim -n 512 --seed 7 --domains 4 --trace g_sharded.bin > gs_sharded.txt
  $ cmp g_ref.bin g_sharded.bin && echo trace-identical
  trace-identical
  $ cmp gs_ref.txt gs_sharded.txt && echo output-identical
  output-identical
