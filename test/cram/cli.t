The CLI is deterministic given --seed; these golden outputs pin the
user-facing behaviour of every subcommand.

  $ ../../bin/overlay_sim.exe sample -n 256 --seed 7
  topology:        hgraph over 256 nodes
  mode:            rapid (pointer doubling)
  rounds:          8
  walk length:     16
  samples/node:    14
  underflows:      8
  max work/round:  13056 bits
  uniformity:      chi2 p = 0.348, TV = 0.0984 (floor 0.0998)

  $ ../../bin/overlay_sim.exe churn -n 128 --epochs 2 --seed 7
  epoch  before   after    left    joined  rounds     valid  connected
  1      128      128      38      38      17         true   true
  2      128      128      38      38      17         true   true

  $ ../../bin/overlay_sim.exe dos -n 1024 --windows 2 --lateness 0 --seed 7
  n=1024, 32 supernodes, period=16 rounds, adversary=group-kill lateness=0 frac=0.25
  
  window  starved rounds  disconnected  reconfigured
  1       16/16           0/16          false
  2       16/16           0/16          false

  $ ../../bin/overlay_sim.exe churndos -n 512 --windows 2 --seed 7
  window  before   after    starved   spread  supernodes  dims     reconfigured
  1       512      768      0         0       16          [4..4] true
  2       768      512      0         0       16          [4..4] true

  $ ../../bin/overlay_sim.exe anonymize -n 1024 --requests 100 --frac 0.25 --seed 7
  delivered:      100/100
  exit entropy:   0.9271 of maximum
  rounds/request: 4

  $ ../../bin/overlay_sim.exe dht -n 512 --ops 50 --seed 7
  supernodes:     16 (k=4, d=2)
  served:         100
  failed:         0
  max hops:       2
  max group load: 27

  $ ../../examples/quickstart.exe
  H-graph: 1000 nodes, degree 8, 4 Hamilton cycles
  rapid sampling: 10 rounds (walk length 32), >= 18 samples/node, max per-node work 42640 bits/round
  plain walks:    21 rounds for the same walk length class
  uniformity: chi-square p = 0.229 (TV 0.0902, noise floor 0.0893)
  reconfiguration: 1000 -> 999 nodes in 21 rounds; valid=true connected=true

  $ ../../bin/overlay_sim.exe groupsim -n 512 --seed 7
  message-level group simulation: 512 nodes, 16 supernodes, 10 network rounds
  lost groups:   []
  sample chi2 p: 0.470
  messages:      93800
  max work:      45188 bits/node/round

  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 7
  workload: open:0.25, mix read=0.70 write=0.20 publish=0.10, 256 keys (zipf 1.10)
  n=256 mode=reconfig period=8 attack=none frac=0.10 lateness=8 churn=0.00 retry=0
  
  class    issued     ok  goodput   p50   p90   p99  slo-miss  timeout  failed  max-hops
  read         57     57    1.000     2     3     3         0        0       0         2
  write        21     21    1.000     3     3     3         0        0       0         2
  publish      10     10    1.000     7     9     9         2        0       0         6
  all          88     88    1.000     3     6     9         2        0       0         6
  
  hop messages:   260
  max group load: 5

The workload trace is byte-identical at any --domains count (per-client
randomness is keyed, not split sequentially):

  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 7 --domains 1 --trace w1.jsonl > /dev/null
  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 7 --domains 4 --trace w4.jsonl > /dev/null
  $ cmp w1.jsonl w4.jsonl && echo identical
  identical
