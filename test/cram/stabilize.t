The stabilize subcommand starts from a corrupted topology (see
docs/fault_model.md for the spec grammar) and runs the detect-and-repair
loop until the invariant checker finds nothing.  Everything is
deterministic: same seed, same report, at any domain count.

  $ ../../bin/overlay_sim.exe stabilize --corruption class=split -n 64
  stabilize: n=64 d=8 corruption=class=split mode=repair
  
  converged          true
  epochs             1
  rounds             45
  bits               50596
  initial violations 60
  residual           0
  patches            0
  splices            60
  reconfigs          4
  retries            0


The static baseline only detects; the damage persists and is reported
(listing capped at six examples):

  $ ../../bin/overlay_sim.exe stabilize --corruption 'class=range,severity=0.25' -n 64 --mode static
  stabilize: n=64 d=8 corruption=class=range mode=static
  
  converged          false
  epochs             1
  rounds             1
  bits               0
  initial violations 64
  residual           64
  patches            0
  splices            0
  reconfigs          0
  retries            0
    violation        cycle 0: succ(0) = -58 is out of range
    violation        cycle 0: succ(2) = 65 is out of range
    violation        cycle 0: succ(6) = 83 is out of range
    violation        cycle 0: succ(7) = -27 is out of range
    violation        cycle 0: succ(11) = 74 is out of range
    violation        cycle 0: succ(12) = -50 is out of range
    violation        ... and 58 more


Malformed corruption specs die with a pointed diagnostic and exit 2:

  $ ../../bin/overlay_sim.exe stabilize --corruption class=bogus -n 64
  scenario: corruption: unknown corruption class "bogus" (branch|split|range|crosslink|partition|stale)
  [2]

  $ ../../bin/overlay_sim.exe stabilize --corruption 'class=split,severity=2' -n 64
  scenario: corruption: severity must be in (0, 1]
  [2]

  $ ../../bin/overlay_sim.exe stabilize --corruption 'severity=0.5' -n 64
  scenario: corruption: missing class=CLASS
  [2]

Repair runs emit the repair/* spans and a converged note; trace_check
matches span/note names when --require is not a plain event kind, with a
trailing * matching any suffix:

  $ ../../bin/overlay_sim.exe stabilize --corruption class=split -n 64 --trace rep.jsonl > /dev/null
  $ ../../bin/trace_check.exe --require converged rep.jsonl
  rep.jsonl: 22 lines, note=2, span=20
  trace_check: OK
  $ ../../bin/trace_check.exe --require 'repair/*' rep.jsonl
  rep.jsonl: 22 lines, note=2, span=20
  trace_check: OK

A static run never converges, so requiring the converged note fails --
on the binary sink too:

  $ ../../bin/overlay_sim.exe stabilize --corruption class=split -n 64 --mode static --trace static.bin --trace-format bin > /dev/null
  $ ../../bin/trace_check.exe --require converged static.bin
  static.bin: 2 events, note=2
  trace_check: FAIL - no converged events
  [1]

Corrupted runs fan out through the sweep engine like any other scenario
axis; the checkpoint is byte-identical at any domain count:

  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=stab;run=stabilize;axis:corruption=class=branch|class=partition;var:mode=repair|static;n=64;seed=5' --checkpoint st1.jsonl --domains 1
  sweep stab: 4 cells (run=stabilize)
  
  cell                                    converged  epochs  rounds   bits  residual  patches  splices
  corruption=class=branch;mode=repair          true       1      47  55392         0       64       14
  corruption=class=branch;mode=static         false       1       1      0        64        0        0
  corruption=class=partition;mode=repair       true       1      41  59528         0        0        4
  corruption=class=partition;mode=static      false       1       1      0         5        0        0


  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=stab;run=stabilize;axis:corruption=class=branch|class=partition;var:mode=repair|static;n=64;seed=5' --checkpoint st4.jsonl --domains 4 > /dev/null
  $ cmp st1.jsonl st4.jsonl && echo identical
  identical
