Binary trace sink goldens.  Three properties pinned here: same-seed runs
produce byte-identical .bin files (determinism survives the buffered
writer and symbol interning), `--trace-format bin` forces the binary
sink regardless of the path suffix, and `trace_check --export-jsonl`
reconstructs the exact bytes the JSONL sink writes for the same run —
so the md5s below equal the JSONL golden in equivalence.t.  A mismatch
means the binary codec lost information (most likely a float or an
interned string) somewhere between emit and decode.

Same seed, two runs, one byte-identical binary trace:

  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 11 --trace w1.bin > /dev/null
  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 11 --trace w2.bin > /dev/null
  $ cmp w1.bin w2.bin

--trace-format bin overrides the suffix-based default and produces the
same bytes as the .bin-suffixed run:

  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 11 --trace w3.trace --trace-format bin > /dev/null
  $ cmp w1.bin w3.trace

trace_check decodes the binary stream and counts events by kind:

  $ ../../bin/trace_check.exe w1.bin
  w1.bin: 116 events, note=1, request=91, round=24
  trace_check: OK

Exporting recovers the exact JSONL bytes: byte-identical to a direct
JSONL run, and md5-equal to the workload golden pinned in equivalence.t.

  $ ../../bin/trace_check.exe --export-jsonl w.export.jsonl w1.bin > /dev/null
  $ ../../bin/overlay_sim.exe workload -n 256 --rounds 24 --clients 16 --seed 11 --trace w.direct.jsonl > /dev/null
  $ cmp w.export.jsonl w.direct.jsonl
  $ md5sum w.export.jsonl | awk '{print $1}'
  f258bb40bbe6024c02135373e69d4bae

The churn driver emits epoch notes with float fields
(reachable_fraction and friends), covering the f64 value encoding and
the shortest-roundtrip float text on the export path:

  $ ../../bin/overlay_sim.exe churn -n 128 --epochs 3 --seed 11 --trace churn.bin > /dev/null
  $ ../../bin/trace_check.exe --export-jsonl churn.export.jsonl churn.bin > /dev/null
  $ md5sum churn.export.jsonl | awk '{print $1}'
  d978434162af20e94a83679105ff327e

--export-jsonl refuses text traces instead of silently re-encoding:

  $ ../../bin/trace_check.exe --export-jsonl nope.jsonl w.direct.jsonl
  trace_check: --export-jsonl expects a binary trace, and w.direct.jsonl is not one
  [2]
