The sweep subcommand expands a declarative grid, runs one cell per
combination, and streams a resumable JSONL checkpoint.  Everything here
is deterministic: cell seeds derive from (sweep name, cell id) alone.

  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=demo;run=sample;axis:n=64|128;var:c=1.5|2' --checkpoint ck.jsonl --domains 2
  sweep demo: 4 cells (run=sample)
  
  cell         rounds  samples_per_node  underflows  max_node_bits
  n=64;c=1.5        8                 8           1           6864
  n=64;c=2          8                11           6           8932
  n=128;c=1.5       8                 9          17           8326
  n=128;c=2         8                12          11          11063


The checkpoint carries one record per cell, headed by the reserved
keys and a copy-pasteable scenario spec rebuilding the cell:

  $ cat ck.jsonl
  {"sweep":"demo","cell":"n=64;c=1.5","index":0,"repro":"n=64","rounds":8,"samples_per_node":8,"underflows":1,"max_node_bits":6864}
  {"sweep":"demo","cell":"n=64;c=2","index":1,"repro":"n=64","rounds":8,"samples_per_node":11,"underflows":6,"max_node_bits":8932}
  {"sweep":"demo","cell":"n=128;c=1.5","index":2,"repro":"n=128","rounds":8,"samples_per_node":9,"underflows":17,"max_node_bits":8326}
  {"sweep":"demo","cell":"n=128;c=2","index":3,"repro":"n=128","rounds":8,"samples_per_node":12,"underflows":11,"max_node_bits":11063}

Rerunning against the finished checkpoint recomputes nothing and prints
the same table; the artifact is untouched:

  $ cp ck.jsonl ck.orig
  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=demo;run=sample;axis:n=64|128;var:c=1.5|2' --checkpoint ck.jsonl --domains 1
  sweep demo: 4 cells (run=sample)
  
  cell         rounds  samples_per_node  underflows  max_node_bits
  n=64;c=1.5        8                 8           1           6864
  n=64;c=2          8                11           6           8932
  n=128;c=1.5       8                 9          17           8326
  n=128;c=2         8                12          11          11063

  $ cmp ck.jsonl ck.orig && echo identical
  identical

An interrupted sweep (here: two surviving records plus a torn line)
resumes to a byte-identical artifact at any domain count:

  $ head -n 2 ck.orig > ck.cut
  $ printf '{"sweep":"demo","cell":"torn' >> ck.cut
  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=demo;run=sample;axis:n=64|128;var:c=1.5|2' --checkpoint ck.cut --domains 4 > /dev/null
  $ cmp ck.cut ck.orig && echo identical
  identical

Specs can live in a file; '#' comments and newlines are allowed:

  $ cat > grid.spec <<'EOF'
  > # two-axis demo grid
  > sweep=demo; run=sample
  > axis:n=64|128
  > var:c=1.5|2
  > EOF
  $ ../../bin/overlay_sim.exe sweep --file grid.spec --checkpoint ck.file.jsonl > /dev/null
  $ cmp ck.file.jsonl ck.orig && echo identical
  identical

Progress events land on --trace, one per cell:

  $ rm -f ck.jsonl
  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=demo;run=sample;axis:n=64|128;var:c=1.5|2' --checkpoint ck.jsonl --trace progress.jsonl > /dev/null
  $ ../../bin/trace_check.exe --require progress progress.jsonl
  progress.jsonl: 4 lines, progress=4
  trace_check: OK

Bad grids fail loudly:

  $ ../../bin/overlay_sim.exe sweep --spec 'run=nope'
  unknown sweep runner "nope" (sample|churn|stabilize|chord|social)
  [2]
  $ ../../bin/overlay_sim.exe sweep --spec 'axis:n=-4'
  sweep: cell n=-4: scenario: n must be > 0
  [2]
