The chord subcommand runs the classical-DHT baseline: a Chord ring with
successor lists and finger tables under churn, faults and the stale-view
successor-list adversary.  Same determinism contract as every other
subcommand: the report is a pure function of the scenario seed.

  $ ../../bin/overlay_sim.exe chord --n 128 --rounds 24 --seed 7 --attack succ-kill --frac 0.2 --churn 0.1 --faults 'drop=0.02,seed=5'
  chord: n=128 m=16 fingers=16 succs=7 period=8 rounds=24
  lookups: issued=192 ok=129 goodput=0.672 p50=6 p99=18 max-hops=7 timeouts=458
  maintenance: stabilize=303 adoptions=50 fallbacks=3 isolated=0 finger-fixes=87 pred-clears=40 joins=24 join-failures=0
  traffic: lookup-msgs=2460 maint-msgs=2449 total-bits=523520
  health: succ-ok=0.888 connected=false members=116

Same seed, same flags: byte-identical traces (maintenance spans, health
notes, per-round records and all).

  $ ../../bin/overlay_sim.exe chord --n 128 --rounds 24 --seed 7 --attack succ-kill --frac 0.2 --churn 0.1 --faults 'drop=0.02,seed=5' --trace a.jsonl > /dev/null
  $ ../../bin/overlay_sim.exe chord --n 128 --rounds 24 --seed 7 --attack succ-kill --frac 0.2 --churn 0.1 --faults 'drop=0.02,seed=5' --trace b.jsonl > /dev/null
  $ cmp a.jsonl b.jsonl && echo identical
  identical

The trace carries the staggered maintenance spans:

  $ ../../bin/trace_check.exe --require chord/maintain a.jsonl
  a.jsonl: 377 lines, adversary=3, fault=108, note=26, request=192, round=24, span=24
  trace_check: OK

The group-kill alias lets one scenario spec drive both backends, and a
bogus strategy fails loudly:

  $ ../../bin/overlay_sim.exe chord --n 64 --rounds 8 --seed 3 --attack group-kill --json | sed 's/.*"goodput"://;s/,.*//'
  chord: n=64 m=14 fingers=14 succs=6 period=8 rounds=8
  lookups: issued=64 ok=64 goodput=1.000 p50=4 p99=6 max-hops=5 timeouts=0
  maintenance: stabilize=64 adoptions=0 fallbacks=0 isolated=0 finger-fixes=0 pred-clears=0 joins=0 join-failures=0
  traffic: lookup-msgs=408 maint-msgs=448 total-bits=83152
  health: succ-ok=1.000 connected=true members=64
  1.0000
  $ ../../bin/overlay_sim.exe chord --attack bogus
  unknown attack "bogus" (expected none|random|succ-kill)
  [2]

run=chord plugs the same simulation into the sweep engine; cell results
are independent of the domain count and the checkpoint resumes to a
byte-identical artifact.

  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=cdemo;run=chord;rounds=16;axis:n=64|128;axis:adversary=none|succ-kill;var:churn=0.1' --checkpoint ck.jsonl --domains 1
  sweep cdemo: 4 cells (run=chord)
  
  cell                                   goodput  p50  p99  max_hops  maint_msgs  total_bits              succ_ok  connected  members
  n=64;adversary=none;churn=0.1        0.9453125    5    8         6         859      171158  0.94827586206896552      false       58
  n=64;adversary=succ-kill;churn=0.1   0.9921875    5    8         6         858      170906  0.96551724137931039      false       58
  n=128;adversary=none;churn=0.1        0.984375    5   10         7        1721      313504  0.96551724137931039      false      116
  n=128;adversary=succ-kill;churn=0.1  0.9765625    5   12         8        1715      314080   0.9568965517241379      false      116

  $ cp ck.jsonl ck.orig
  $ head -n 1 ck.orig > ck.cut
  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=cdemo;run=chord;rounds=16;axis:n=64|128;axis:adversary=none|succ-kill;var:churn=0.1' --checkpoint ck.cut --domains 4 > /dev/null
  $ cmp ck.cut ck.orig && echo identical
  identical

Unknown subcommands exit 2 with the full index, so typos cannot be
mistaken for empty runs:

  $ ../../bin/overlay_sim.exe frobnicate
  overlay_sim: unknown subcommand "frobnicate"
  
  Subcommands:
    sample     run a node sampling primitive (Section 3)
    churn      drive the churn-resistant expander network (Section 4)
    dos        drive the DoS-resistant hypercube network (Section 5)
    stabilize  repair a corrupted topology via detect-and-repair reconfiguration
    churndos   drive the combined churn + DoS network (Section 6)
    groupsim   replay the Section 5 group machinery message-by-message (Lemmas 14/15)
    anonymize  issue anonymous requests through the relay overlay (Section 7.1)
    dht        run a read/write batch against the robust DHT (Section 7.2)
    workload   run an open/closed-loop request workload against the DHT / pub-sub stack under reconfiguration, DoS, churn, and faults (Section 7)
    chord      run the Chord backend: ring maintenance + probe lookups under churn, faults, and the stale-view adversary
    social     run the Reddit-style social application: five traffic classes with per-class SLOs over the pub-sub / DHT stack, with repost fan-out and online/offline sessions
    sweep      run a declarative experiment grid (checkpointed, resumable, domain-parallel)
  [2]
