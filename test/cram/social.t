The social subcommand runs the Reddit-style composite application: five
traffic classes (feed reads dominating posts, comments, votes and DMs)
with per-class retry/timeout budgets and SLOs, repost fan-out riding in
the post's operation chain, zipf subreddit popularity, and online/offline
user sessions compiled onto the server churn plan.  Same determinism
contract as every other subcommand: the report is a pure function of the
scenario seed.

  $ ../../bin/overlay_sim.exe social --n 192 --users 32 --topics 8 --rounds 32 --seed 11 --attack group-kill --frac 0.2 --session 0.85:8 --faults 'drop=0.02,seed=5'
  social: 32 users, 8 topics, fanout 2, rate 0.25, zipf 1.10, session 0.85:8
  n=192 mode=reconfig period=8 attack=group-kill frac=0.20 lateness=8
  
  class    issued     ok  goodput   p50   p90   p99  slo-miss  timeout  failed  max-hops
  feed        121    120    0.992     2     3     4         0        0       1         2
  post         50     50    1.000    23    25    27         0        0       0        18
  comment      25     25    1.000     8     9     9         0        0       0         6
  vote         19     19    1.000     3     3     3         0        0       0         2
  dm            6      6    1.000     8     9     9         0        0       0         6
  all         221    220    0.995     3    23    26         0        0       1        18
  
  hop messages:   1701
  max group load: 18

Same seed, same flags: byte-identical traces, even with sessions, the
hot-key adversary and faults in play.

  $ ../../bin/overlay_sim.exe social --n 192 --users 32 --topics 8 --rounds 32 --seed 11 --attack group-kill --frac 0.2 --session 0.85:8 --faults 'drop=0.02,seed=5' --trace a.jsonl > /dev/null
  $ ../../bin/overlay_sim.exe social --n 192 --users 32 --topics 8 --rounds 32 --seed 11 --attack group-kill --frac 0.2 --session 0.85:8 --faults 'drop=0.02,seed=5' --trace b.jsonl > /dev/null
  $ cmp a.jsonl b.jsonl && echo identical
  identical

The trace carries the social/* span family: the run header, one session
note per churn epoch, and the periodic backend health probe.

  $ ../../bin/trace_check.exe --require 'social/*' a.jsonl
  a.jsonl: 273 lines, adversary=4, fault=8, note=8, request=221, round=32
  trace_check: OK

--json emits one object per class plus the merged "all" row, and a bad
session spec fails loudly through the shared scenario parser:

  $ ../../bin/overlay_sim.exe social --n 128 --users 24 --topics 6 --rounds 24 --seed 4 --json | tail -n 1
  {"cmd":"social","n":128,"feed":{"issued":89,"ok":89,"goodput":1.0000,"p99":3,"slo_miss":0},"post":{"issued":25,"ok":25,"goodput":1.0000,"p99":27,"slo_miss":0},"comment":{"issued":24,"ok":24,"goodput":1.0000,"p99":9,"slo_miss":0},"vote":{"issued":22,"ok":22,"goodput":1.0000,"p99":3,"slo_miss":0},"dm":{"issued":5,"ok":5,"goodput":1.0000,"p99":8,"slo_miss":0},"all":{"issued":165,"ok":165,"goodput":1.0000,"p99":26,"slo_miss":0}}
  $ ../../bin/overlay_sim.exe social --session nonsense
  scenario: session expects ONLINE:EPOCH, got "nonsense"
  [2]

run=social plugs the application into the sweep engine; cell results are
independent of the domain count and the checkpoint resumes to a
byte-identical artifact.

  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=sdemo;run=social;rounds=24;topics=6;session=0.85:8;axis:n=96|192;axis:backend=reconfig|static;adversary=group-kill' --checkpoint ck.jsonl --domains 1
  sweep sdemo: 4 cells (run=social)
  
  cell                    feed_goodput  feed_p99  post_goodput  post_p99  comment_goodput  comment_p99  vote_goodput  vote_p99  dm_goodput  dm_p99  goodput  slo_miss  hop_msgs  total_bits
  n=96;backend=reconfig              1         2             1        18                1            6             1         2           1       6        1         0      1636      142332
  n=96;backend=static                1         2             1        18                1            6             1         2           1       6        1         0      1502      130674
  n=192;backend=reconfig             1         3             1        27                1            9             1         3           1       9        1         0      2185      192280
  n=192;backend=static               1         3             1        26                1            9             1         3           1       9        1         0      1800      158400

  $ cp ck.jsonl ck.orig
  $ head -n 1 ck.orig > ck.cut
  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=sdemo;run=social;rounds=24;topics=6;session=0.85:8;axis:n=96|192;axis:backend=reconfig|static;adversary=group-kill' --checkpoint ck.cut --domains 4 > /dev/null
  $ cmp ck.cut ck.orig && echo identical
  identical

A typo in a scenario key is diagnosed with the nearest valid key, so a
misspelled axis cannot silently fall back to a default.

  $ ../../bin/overlay_sim.exe sweep --spec 'sweep=x;run=social;topic=6;axis:n=64'
  scenario: topic is not a scenario key (did you mean topics?)
  [2]
