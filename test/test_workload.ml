(* Tests for the workload subsystem: spec parsing, deterministic generation,
   the driver's accounting invariants, and the E16 shape (reconfiguration
   keeps goodput while the static baseline collapses under group-kill). *)

let seed = 0x57AB_1E5EL

(* ---------- Spec ---------- *)

let test_spec_defaults_and_guards () =
  let s = Workload.Spec.make () in
  Alcotest.(check int) "clients" 128 s.Workload.Spec.clients;
  let sum =
    s.Workload.Spec.mix.Workload.Spec.read
    +. s.Workload.Spec.mix.Workload.Spec.write
    +. s.Workload.Spec.mix.Workload.Spec.publish
  in
  Alcotest.(check bool) "mix normalized" true (abs_float (sum -. 1.0) < 1e-9);
  (try
     ignore (Workload.Spec.make ~keys:(1 lsl 20) ());
     Alcotest.fail "keys >= 2^20 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Workload.Spec.make ~arrivals:(Workload.Spec.Open_loop { rate = 0.0 }) ());
    Alcotest.fail "zero rate accepted"
  with Invalid_argument _ -> ()

let test_spec_parsers () =
  (match Workload.Spec.parse_arrivals "open:0.5" with
  | Ok (Workload.Spec.Open_loop { rate }) ->
      Alcotest.(check (float 1e-9)) "rate" 0.5 rate
  | _ -> Alcotest.fail "open:0.5");
  (match Workload.Spec.parse_arrivals "closed:3" with
  | Ok (Workload.Spec.Closed_loop { think }) ->
      Alcotest.(check int) "think" 3 think
  | _ -> Alcotest.fail "closed:3");
  (match Workload.Spec.parse_arrivals "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  (match Workload.Spec.parse_mix "read=1,write=1,publish=2" with
  | Ok m ->
      Alcotest.(check (float 1e-9)) "normalized publish" 0.5
        m.Workload.Spec.publish
  | Error e -> Alcotest.fail e);
  match Workload.Spec.parse_mix "read=1,bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown class accepted"

(* ---------- Gen ---------- *)

let spec_small =
  Workload.Spec.make ~clients:16 ~rounds:20 ~keys:64
    ~arrivals:(Workload.Spec.Open_loop { rate = 0.5 })
    ()

let test_gen_schedule_sorted_and_in_range () =
  let sched = Workload.Gen.open_schedule ~spec:spec_small ~seed () in
  Alcotest.(check bool) "non-empty" true (Array.length sched > 0);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "arrival in range" true
        (r.Workload.Gen.arrival >= 0
        && r.Workload.Gen.arrival < spec_small.Workload.Spec.rounds);
      Alcotest.(check bool) "key in range" true
        (r.Workload.Gen.key >= 0
        && r.Workload.Gen.key < spec_small.Workload.Spec.keys);
      if i > 0 then
        Alcotest.(check bool) "sorted by arrival" true
          (sched.(i - 1).Workload.Gen.arrival <= r.Workload.Gen.arrival))
    sched

let test_gen_schedule_domain_independent () =
  let a = Workload.Gen.open_schedule ~domains:1 ~spec:spec_small ~seed () in
  let b = Workload.Gen.open_schedule ~domains:4 ~spec:spec_small ~seed () in
  Alcotest.(check bool) "identical schedules" true (a = b)

let test_gen_client_streams_are_keyed () =
  (* client 3's requests do not depend on how many other clients exist *)
  let wide =
    Workload.Spec.make ~clients:32 ~rounds:20 ~keys:64
      ~arrivals:(Workload.Spec.Open_loop { rate = 0.5 })
      ()
  in
  let of_client c sched =
    Array.to_list
      (Array.of_seq
         (Seq.filter
            (fun r -> r.Workload.Gen.client = c)
            (Array.to_seq sched)))
  in
  let narrow_sched = Workload.Gen.open_schedule ~spec:spec_small ~seed () in
  let wide_sched = Workload.Gen.open_schedule ~spec:wide ~seed () in
  Alcotest.(check bool) "client 3 stream unchanged" true
    (of_client 3 narrow_sched = of_client 3 wide_sched)

(* ---------- Driver ---------- *)

let run_with ?(n = 256) ?trace cfg =
  Workload.Driver.run ?trace ~seed ~n cfg

let collect_trace f =
  let buf = Buffer.create 4096 in
  let t =
    Simnet.Trace.make
      ~emit:(fun ev ->
        Buffer.add_string buf (Simnet.Trace.jsonl_of_event ev);
        Buffer.add_char buf '\n')
      ~close:ignore
  in
  let r = f t in
  (r, Buffer.contents buf)

let counts (r : Workload.Driver.report) =
  let t = r.Workload.Driver.total in
  ( t.Workload.Driver.issued,
    t.Workload.Driver.ok,
    t.Workload.Driver.timed_out,
    t.Workload.Driver.failed )

let test_driver_no_attack_serves_everything () =
  let cfg = Workload.Driver.config spec_small in
  let r = run_with cfg in
  let issued, ok, timeout, failed = counts r in
  Alcotest.(check bool) "issued > 0" true (issued > 0);
  Alcotest.(check int) "all served" issued ok;
  Alcotest.(check int) "no timeouts" 0 timeout;
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check (float 1e-9)) "goodput 1" 1.0
    (Workload.Driver.goodput r.Workload.Driver.total)

let test_driver_accounting_invariants () =
  let cfg =
    Workload.Driver.config ~attack:Workload.Attack.Group_kill ~frac:0.2
      ~retries:2
      ~faults:(Simnet.Faults.make ~drop:0.05 ())
      spec_small
  in
  let r = run_with cfg in
  let t = r.Workload.Driver.total in
  (* per-class counts add up, and every issued request ended exactly one way *)
  List.iter
    (fun (c : Workload.Driver.class_report) ->
      Alcotest.(check int)
        (c.Workload.Driver.cls ^ " conservation")
        c.Workload.Driver.issued
        (c.Workload.Driver.ok + c.Workload.Driver.timed_out
       + c.Workload.Driver.failed))
    r.Workload.Driver.classes;
  Alcotest.(check int) "issued = sum classes" t.Workload.Driver.issued
    (List.fold_left
       (fun a c -> a + c.Workload.Driver.issued)
       0 r.Workload.Driver.classes);
  (* the overall histogram is the merge of the class histograms *)
  Alcotest.(check int) "merged histogram covers all served"
    t.Workload.Driver.ok
    (Stats.Log_histogram.total t.Workload.Driver.hist)

let test_driver_deterministic_and_trace_stable () =
  let cfg =
    Workload.Driver.config ~attack:Workload.Attack.Group_kill ~frac:0.2
      ~churn:{ Workload.Driver.frac = 0.1; epoch = 4 }
      ~faults:(Simnet.Faults.make ~drop:0.05 ())
      ~retries:3 spec_small
  in
  let r1, t1 = collect_trace (fun t -> run_with ~trace:t cfg) in
  let r2, t2 = collect_trace (fun t -> run_with ~trace:t cfg) in
  Alcotest.(check string) "byte-identical traces" t1 t2;
  Alcotest.(check bool) "same tables" true
    (Workload.Driver.table_lines r1 = Workload.Driver.table_lines r2)

let test_driver_domains_do_not_change_results () =
  let c1 = Workload.Driver.config ~domains:1 spec_small in
  let c4 = Workload.Driver.config ~domains:4 spec_small in
  let r1, t1 = collect_trace (fun t -> run_with ~trace:t c1) in
  let r4, t4 = collect_trace (fun t -> run_with ~trace:t c4) in
  Alcotest.(check string) "byte-identical traces across domains" t1 t4;
  Alcotest.(check bool) "same tables" true
    (Workload.Driver.table_lines r1 = Workload.Driver.table_lines r4)

let test_driver_inert_fault_plan_is_identity () =
  (* a zero-rate plan must not perturb a single coin flip *)
  let plain = Workload.Driver.config spec_small in
  let inert =
    Workload.Driver.config ~faults:(Simnet.Faults.make ()) spec_small
  in
  let r1, t1 = collect_trace (fun t -> run_with ~trace:t plain) in
  let r2, t2 = collect_trace (fun t -> run_with ~trace:t inert) in
  Alcotest.(check string) "identical traces" t1 t2;
  Alcotest.(check bool) "identical tables" true
    (Workload.Driver.table_lines r1 = Workload.Driver.table_lines r2)

let test_driver_closed_loop_one_outstanding () =
  let spec =
    Workload.Spec.make ~clients:8 ~rounds:30 ~keys:32
      ~arrivals:(Workload.Spec.Closed_loop { think = 2 })
      ()
  in
  let r = run_with (Workload.Driver.config spec) in
  let issued, ok, _, _ = counts r in
  Alcotest.(check bool) "each client issued at least once" true (issued >= 8);
  Alcotest.(check bool) "one outstanding per client bounds issues" true
    (issued <= 8 * 30);
  Alcotest.(check int) "all served" issued ok

(* The E16 / Theorem 8 shape, on a test-sized instance. *)
let test_driver_reconfig_survives_static_collapses () =
  let spec =
    Workload.Spec.make ~clients:32 ~rounds:32 ~keys:256
      ~arrivals:(Workload.Spec.Open_loop { rate = 0.5 })
      ~popularity:(Workload.Spec.Zipf 1.1) ()
  in
  let attacked mode =
    Workload.Driver.config ~mode ~period:8 ~lateness:8
      ~attack:Workload.Attack.Group_kill ~frac:0.2
      ~faults:(Simnet.Faults.make ~drop:0.05 ())
      ~retries:3 spec
  in
  let reconfig =
    run_with ~n:512 (attacked Workload.Driver.Reconfig)
  in
  let static = run_with ~n:512 (attacked Workload.Driver.Static) in
  let g_r = Workload.Driver.goodput reconfig.Workload.Driver.total in
  let g_s = Workload.Driver.goodput static.Workload.Driver.total in
  Alcotest.(check bool)
    (Printf.sprintf "reconfig goodput %.3f >= 0.99" g_r)
    true (g_r >= 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "static goodput %.3f collapses below 0.9" g_s)
    true (g_s < 0.9);
  Alcotest.(check bool) "visible gap" true (g_r -. g_s >= 0.1)

let () =
  Alcotest.run "workload"
    [
      ( "spec",
        [
          Alcotest.test_case "defaults and guards" `Quick
            test_spec_defaults_and_guards;
          Alcotest.test_case "parsers" `Quick test_spec_parsers;
        ] );
      ( "gen",
        [
          Alcotest.test_case "schedule sorted, in range" `Quick
            test_gen_schedule_sorted_and_in_range;
          Alcotest.test_case "domain independent" `Quick
            test_gen_schedule_domain_independent;
          Alcotest.test_case "client streams keyed" `Quick
            test_gen_client_streams_are_keyed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "no attack serves everything" `Quick
            test_driver_no_attack_serves_everything;
          Alcotest.test_case "accounting invariants" `Quick
            test_driver_accounting_invariants;
          Alcotest.test_case "deterministic traces" `Quick
            test_driver_deterministic_and_trace_stable;
          Alcotest.test_case "domain-count independent" `Quick
            test_driver_domains_do_not_change_results;
          Alcotest.test_case "inert fault plan is identity" `Quick
            test_driver_inert_fault_plan_is_identity;
          Alcotest.test_case "closed loop" `Quick
            test_driver_closed_loop_one_outstanding;
          Alcotest.test_case "reconfig survives, static collapses (Thm 8)"
            `Slow test_driver_reconfig_survives_static_collapses;
        ] );
    ]
